//! The RTL2MµPATH synthesis procedures (§V-B).
//!
//! Phases, mirroring Fig. 6:
//!
//! 1. [`duv_pl_reachability`] — which PLs are reachable by *any* instruction
//!    (§V-B1): plain cover properties on the un-harnessed design.
//! 2. Per IUV: [`synthesize_instr`] — enumerate every µPATH *shape*
//!    (reachable PL set + revisit classification, §V-B2–§V-B4). The paper
//!    prunes a candidate powerset with dominates/exclusive covers and then
//!    checks each candidate set; with an incremental SAT backend the same
//!    enumeration is done directly: each satisfying execution yields a
//!    shape, whose signature (visited/multi/non-consecutive bits at the
//!    final frame) is then blocked, until the cover becomes unreachable —
//!    same outcome set, one solver. The §V-B3 dominates/exclusive relations
//!    remain available via [`dom_excl_relations`] (they feed the §VII-B3
//!    property accounting and the HB-edge filter).
//! 3. HB edges (§V-B5): candidate edges are PL pairs whose µFSMs are
//!    connected by pure combinational logic; candidates are confirmed
//!    against the enumerated witnesses.
//! 4. [`enumerate_revisit_counts`] — the optional §V-B6 revisit-cycle-count
//!    enumeration (e.g. the DIV latency range).

use crate::harness::{build_harness, ContextMode, HarnessConfig, IuvHarness};
use isa::Opcode;
use mc::{CheckStats, Checker, McConfig, Outcome, UndeterminedReason};
use netlist::analysis::comb_connected;
use netlist::{Builder, SignalId};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use uarch::Design;
use uhb::{decisions_of_paths, ConcretePath, Decision, MuPath, PlId, PlTable};

/// Synthesis parameters.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Fetch slots to explore (IUV position among context instructions).
    pub slots: Vec<usize>,
    /// Context restriction.
    pub context: ContextMode,
    /// BMC bound (cycles from reset); must cover fetch-to-drain latency of
    /// the IUV in the deepest slot.
    pub bound: usize,
    /// SAT conflict budget per property.
    pub conflict_budget: Option<u64>,
    /// Safety cap on enumerated shapes per (instruction, slot).
    pub max_shapes: usize,
}

impl SynthConfig {
    /// A configuration derived from the design's latency bound: slot 0 and
    /// 1, no-control-flow context.
    pub fn for_design(design: &Design) -> Self {
        Self {
            slots: vec![0, 1],
            context: ContextMode::NoControlFlow,
            bound: design.max_latency + 8,
            conflict_budget: Some(4_000_000),
            max_shapes: 128,
        }
    }

    /// The artifact's quick mode: the IUV alone, right after reset.
    pub fn solo(design: &Design) -> Self {
        Self {
            slots: vec![0],
            context: ContextMode::Solo,
            bound: design.max_latency.min(18) + 6,
            conflict_budget: Some(4_000_000),
            max_shapes: 64,
        }
    }

    pub(crate) fn mc_config(&self) -> McConfig {
        McConfig {
            bound: self.bound,
            conflict_budget: self.conflict_budget,
            bound_is_complete: true,
            try_induction: false,
            induction_depth: 0,
        }
    }
}

/// The synthesized result for one instruction.
#[derive(Clone, Debug)]
pub struct InstrSynthesis {
    /// The instruction.
    pub opcode: Opcode,
    /// Every distinct µPATH shape found, with HB edges filled in.
    pub paths: Vec<MuPath>,
    /// One concrete witness execution per shape (cycle-aligned to the first
    /// visit).
    pub concrete: Vec<ConcretePath>,
    /// Decisions at PL granularity (§IV-B).
    pub decisions: Vec<Decision>,
    /// Decisions at µFSM-class granularity (structurally identical µFSMs
    /// such as scoreboard entries merged; the granularity of Fig. 8).
    pub class_decisions: Vec<Decision>,
    /// `false` when a budget ran out and the shape set may be incomplete
    /// (§VII-B4's undetermined discussion).
    pub complete: bool,
    /// Property-evaluation statistics (§VII-B3).
    pub stats: CheckStats,
}

impl InstrSynthesis {
    /// Whether this instruction is a *candidate transponder*: more than one
    /// µPATH (§V, "instructions with more than one µPATH are candidate
    /// transponders").
    pub fn is_candidate_transponder(&self) -> bool {
        self.paths.len() > 1
    }
}

/// A PL-level reachability report for the whole design (§V-B1).
#[derive(Clone, Debug)]
pub struct DuvPlReport {
    /// The PL label table.
    pub pls: PlTable,
    /// Reachable flags per PL (true = some instruction can occupy it).
    pub reachable: Vec<bool>,
    /// Checker statistics.
    pub stats: CheckStats,
}

/// §V-B1: enumerate feasible PLs and prune the unreachable ones with cover
/// properties on the raw design.
pub fn duv_pl_reachability(design: &Design, cfg: &SynthConfig) -> DuvPlReport {
    let ann = &design.annotations;
    let mut b = Builder::from_netlist(design.netlist.clone());
    let mut pls = PlTable::new();
    let mut occupied_sigs = Vec::new();
    for ufsm in &ann.ufsms {
        for st in ufsm.candidate_states(&design.netlist) {
            pls.add(st.name.clone());
            let mut state_match = b.one();
            for (vi, &var) in ufsm.vars.iter().enumerate() {
                let vw = b.wire(var);
                let m = b.eq_const(vw, st.state.0[vi]);
                state_match = b.and(state_match, m);
            }
            let named = b.name(state_match, &format!("occ_{}", st.name));
            occupied_sigs.push(named.id);
        }
    }
    let netlist = b.finish().expect("monitored netlist is valid");
    // Boolean-outcome query: slice to the occupancy monitors' cone (verdict-
    // preserving — no witness data is consumed here).
    let elab = std::sync::Arc::new(mc::Elab::new(&netlist));
    let coi = std::sync::Arc::new(mc::CoiSlice::compute(&netlist, &occupied_sigs));
    let mut checker = Checker::with_coi(
        &netlist,
        cfg.mc_config(),
        &arch_free_regs(design),
        elab,
        Some(coi),
    );
    let reachable = occupied_sigs
        .iter()
        .map(|&sig| checker.check_cover(sig, &[]).is_reachable())
        .collect();
    DuvPlReport {
        pls,
        reachable,
        stats: checker.stats(),
    }
}

/// The architectural state of a design: registers whose reset value is
/// symbolic (§V-B: "only architectural state is symbolically initialized").
fn arch_free_regs(design: &Design) -> Vec<SignalId> {
    let ann = &design.annotations;
    ann.arf.iter().chain(ann.amem.iter()).copied().collect()
}

/// The per-PL shape signature read from a witness at the final frame.
type Signature = Vec<(bool, bool, bool)>;

fn signature_bits(harness: &IuvHarness) -> Vec<SignalId> {
    harness
        .monitors
        .iter()
        .flat_map(|m| [m.visited, m.multi, m.noncons])
        .collect()
}

/// Extracts the IUV's concrete path from a witness trace, cycle-aligned to
/// its first PL visit.
fn extract_path(harness: &IuvHarness, trace: &mc::Trace) -> ConcretePath {
    let mut first: Option<usize> = None;
    let mut visits: Vec<(PlId, usize)> = Vec::new();
    for t in 0..trace.len() {
        for pl in harness.pls.ids() {
            if trace.value(t, harness.monitors(pl).visit_now) != 0 {
                first.get_or_insert(t);
                visits.push((pl, t));
            }
        }
    }
    let base = first.unwrap_or(0);
    let mut path = ConcretePath::new();
    for (pl, t) in visits {
        path.visit(pl, t - base);
    }
    path
}

/// Per-instruction metadata shared by every slot of one instruction,
/// computed once (by the first slot's job).
pub(crate) struct SlotMeta {
    pls: PlTable,
    classes: Vec<String>,
    candidates: BTreeSet<(PlId, PlId)>,
}

/// Computes [`SlotMeta`] from any harness over `design`. The PL table,
/// class labels, and HB-edge candidates depend only on the design's
/// annotations — not on the opcode or fetch slot — so the whole-ISA driver
/// computes this exactly once per run (no solver queries involved).
pub(crate) fn slot_meta(design: &Design, harness: &IuvHarness) -> SlotMeta {
    SlotMeta {
        pls: harness.pls.clone(),
        classes: harness.classes.clone(),
        candidates: hb_edge_candidates(design, harness),
    }
}

/// The result of one (instruction, fetch-slot) enumeration job — the unit
/// of parallelism of the whole-ISA driver. Jobs over the same instruction
/// are merged in slot order by [`assemble_instr`], reproducing the
/// sequential per-instruction result exactly.
#[derive(Clone)]
pub(crate) struct SlotSynthesis {
    shapes: BTreeMap<Signature, ConcretePath>,
    pub(crate) complete: bool,
    pub(crate) stats: CheckStats,
}

impl SlotSynthesis {
    /// The stand-in result for a job the supervisor caught panicking (or
    /// that a fault plan killed): no shapes, incomplete, one undetermined
    /// property on the books under `reason`.
    pub(crate) fn degraded(reason: UndeterminedReason) -> Self {
        let mut stats = CheckStats {
            properties: 1,
            ..Default::default()
        };
        stats.count_undetermined(reason);
        Self {
            shapes: BTreeMap::new(),
            complete: false,
            stats,
        }
    }

    /// Serializes the slot verdict for the checkpoint journal. Metadata and
    /// durations are excluded: the former is derivable from the design, the
    /// latter is nondeterministic.
    pub(crate) fn encode(&self) -> String {
        use jsonio::Json;
        let shapes: Vec<Json> = self
            .shapes
            .iter()
            .map(|(sig, path)| {
                let bits: String = sig
                    .iter()
                    .flat_map(|&(a, b, c)| [a, b, c])
                    .map(|b| if b { '1' } else { '0' })
                    .collect();
                let occ: Vec<Json> = path
                    .pl_set()
                    .iter()
                    .map(|&pl| {
                        Json::Arr(vec![
                            Json::Int(pl.index() as u64),
                            Json::Arr(
                                path.cycles(pl)
                                    .iter()
                                    .map(|&c| Json::Int(c as u64))
                                    .collect(),
                            ),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("sig".into(), Json::Str(bits)),
                    ("occ".into(), Json::Arr(occ)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("v".into(), Json::Int(1)),
            ("complete".into(), Json::Bool(self.complete)),
            ("shapes".into(), Json::Arr(shapes)),
            ("stats".into(), crate::encode_check_stats(&self.stats)),
        ])
        .render_compact()
    }

    /// Parses a journaled record back into a slot verdict. Returns `None`
    /// on any shape mismatch, which the driver treats as a cache miss.
    pub(crate) fn decode(s: &str) -> Option<Self> {
        let j = jsonio::Json::parse(s).ok()?;
        if j.field("v")?.as_u64()? != 1 {
            return None;
        }
        let complete = j.field("complete")?.as_bool()?;
        let mut shapes = BTreeMap::new();
        for sh in j.field("shapes")?.as_arr()? {
            let bits = sh.field("sig")?.as_str()?;
            if bits.len() % 3 != 0 || !bits.bytes().all(|b| b == b'0' || b == b'1') {
                return None;
            }
            let sig: Signature = bits
                .as_bytes()
                .chunks(3)
                .map(|c| (c[0] == b'1', c[1] == b'1', c[2] == b'1'))
                .collect();
            let mut path = ConcretePath::new();
            for entry in sh.field("occ")?.as_arr()? {
                let pair = entry.as_arr()?;
                let pl = PlId(pair.first()?.as_u64()? as u32);
                for cyc in pair.get(1)?.as_arr()? {
                    path.visit(pl, cyc.as_u64()? as usize);
                }
            }
            shapes.insert(sig, path);
        }
        Some(Self {
            shapes,
            complete,
            stats: crate::decode_check_stats(j.field("stats")?)?,
        })
    }
}

/// Enumerates the µPATH shapes of `opcode` through an already-built
/// (usually pooled) checker over a multi-opcode harness. The opcode is
/// selected purely by assumption — `harness.op_assume(opcode)` joins the
/// opcode-independent assumes — and the per-shape blocking clauses are
/// *scoped* under that same assume, so one persistent solver context can
/// serve every opcode of a fetch slot without the blocks of one opcode
/// leaking into another's enumeration. The returned stats are the
/// checker's current batch account (zeroed at checkout).
pub(crate) fn enumerate_slot(
    harness: &IuvHarness,
    opcode: Opcode,
    checker: &mut Checker<'_>,
    cfg: &SynthConfig,
) -> SlotSynthesis {
    let op_assume = harness.op_assume(opcode);
    let mut assumes = Vec::with_capacity(harness.assumes.len() + 1);
    assumes.push(op_assume);
    assumes.extend_from_slice(&harness.assumes);
    let sig_bits = signature_bits(harness);
    let mut shapes: BTreeMap<Signature, ConcretePath> = BTreeMap::new();
    let mut complete = true;
    let mut found_this_slot = 0usize;
    loop {
        if found_this_slot >= cfg.max_shapes {
            complete = false;
            break;
        }
        match checker.check_cover(harness.iuv_done, &assumes) {
            Outcome::Reachable(trace) => {
                found_this_slot += 1;
                let path = extract_path(harness, &trace);
                let signature: Signature = harness
                    .pls
                    .ids()
                    .map(|pl| {
                        let m = harness.monitors(pl);
                        let last = trace.len() - 1;
                        (
                            trace.value(last, m.visited) != 0,
                            trace.value(last, m.multi) != 0,
                            trace.value(last, m.noncons) != 0,
                        )
                    })
                    .collect();
                // Block this signature at the final frame, under this
                // opcode's activation guard.
                let clause: Vec<sat::Lit> = sig_bits
                    .iter()
                    .zip(signature.iter().flat_map(|&(a, b2, c)| [a, b2, c]))
                    .map(|(&sig, val)| {
                        let lit = checker.final_frame_lit(sig);
                        if val {
                            !lit
                        } else {
                            lit
                        }
                    })
                    .collect();
                checker.add_blocking_clause_scoped(op_assume, &clause);
                shapes.entry(signature).or_insert(path);
            }
            Outcome::Unreachable => break,
            Outcome::Undetermined(_) => {
                complete = false;
                break;
            }
        }
    }
    SlotSynthesis {
        shapes,
        complete,
        stats: checker.stats(),
    }
}

/// Merges one instruction's slot jobs (in slot order: earlier slots' shape
/// witnesses win ties, exactly as the sequential loop inserted them) into
/// the final [`InstrSynthesis`]. `meta` is the run-wide [`SlotMeta`] —
/// derivable from the design alone, so the driver computes it once and
/// shares it across every instruction.
pub(crate) fn assemble_instr(
    opcode: Opcode,
    slots: Vec<SlotSynthesis>,
    meta: &SlotMeta,
) -> InstrSynthesis {
    let mut shapes: BTreeMap<Signature, ConcretePath> = BTreeMap::new();
    let mut complete = true;
    let mut stats = CheckStats::default();
    for s in slots {
        complete &= s.complete;
        stats.absorb(&s.stats);
        for (signature, path) in s.shapes {
            shapes.entry(signature).or_insert(path);
        }
    }
    let concrete: Vec<ConcretePath> = shapes.into_values().collect();
    let paths: Vec<MuPath> = concrete
        .iter()
        .map(|p| {
            let mut shape = p.shape();
            shape.edges = witness_edges(p, &meta.candidates);
            shape
        })
        .collect();
    let decisions = decisions_of_paths(&concrete);
    let class_decisions = class_level_decisions(&concrete, &meta.pls, &meta.classes);
    InstrSynthesis {
        opcode,
        paths,
        concrete,
        decisions,
        class_decisions,
        complete,
        stats,
    }
}

/// §V-B2–§V-B4: enumerate all µPATH shapes for one instruction. A
/// convenience wrapper over the whole-ISA driver (and hence the pooled
/// incremental backend) for a single-opcode fleet.
pub fn synthesize_instr(design: &Design, opcode: Opcode, cfg: &SynthConfig) -> InstrSynthesis {
    crate::synthesize_isa(design, &[opcode], cfg)
        .instrs
        .into_iter()
        .next()
        .expect("one instruction requested")
}

/// §V-B5 candidate filter: PL pairs whose source µFSM state registers feed
/// the destination µFSM's next-state logic through pure combinational
/// paths.
fn hb_edge_candidates(design: &Design, harness: &IuvHarness) -> BTreeSet<(PlId, PlId)> {
    let ann = &design.annotations;
    // Group PLs by µFSM (in declaration order, matching harness PL order).
    let mut pl_fsm: Vec<usize> = Vec::new();
    for (fi, ufsm) in ann.ufsms.iter().enumerate() {
        for _ in ufsm.candidate_states(&design.netlist) {
            pl_fsm.push(fi);
        }
    }
    let fsm_regs: Vec<HashSet<SignalId>> = ann
        .ufsms
        .iter()
        .map(|u| {
            let mut s: HashSet<SignalId> = u.vars.iter().copied().collect();
            s.insert(u.pcr);
            s
        })
        .collect();
    let nf = ann.ufsms.len();
    let mut fsm_conn = vec![vec![false; nf]; nf];
    for (i, row) in fsm_conn.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = comb_connected(&design.netlist, &fsm_regs[i], &fsm_regs[j]);
        }
    }
    let mut out = BTreeSet::new();
    for a in harness.pls.ids() {
        for bpl in harness.pls.ids() {
            if a != bpl && fsm_conn[pl_fsm[a.index()]][pl_fsm[bpl.index()]] {
                out.insert((a, bpl));
            }
        }
    }
    out
}

/// Confirms candidate HB edges against a witness: an edge holds when the
/// source PL is occupied exactly one cycle before a visit to the
/// destination PL.
fn witness_edges(
    path: &ConcretePath,
    candidates: &BTreeSet<(PlId, PlId)>,
) -> BTreeSet<(PlId, PlId)> {
    let mut edges = BTreeSet::new();
    for &(a, b) in candidates {
        let cycles_a: BTreeSet<usize> = path.cycles(a).iter().copied().collect();
        if path
            .cycles(b)
            .iter()
            .any(|&t| t > 0 && cycles_a.contains(&(t - 1)))
        {
            edges.insert((a, b));
        }
    }
    edges
}

/// Re-expresses concrete paths at µFSM-class granularity and extracts
/// decisions there (scoreboard entries etc. merged).
fn class_level_decisions(
    paths: &[ConcretePath],
    pls: &PlTable,
    classes: &[String],
) -> Vec<Decision> {
    let (class_table, mapped) = class_view(paths, pls, classes);
    let _ = class_table;
    decisions_of_paths(&mapped)
}

/// Maps concrete paths onto a class-level PL table. Returns the class table
/// and the re-mapped paths.
pub fn class_view(
    paths: &[ConcretePath],
    pls: &PlTable,
    classes: &[String],
) -> (PlTable, Vec<ConcretePath>) {
    let mut class_table = PlTable::new();
    let mut class_of_pl: Vec<PlId> = Vec::new();
    for pl in pls.ids() {
        let cname = &classes[pl.index()];
        let cid = class_table
            .find(cname)
            .unwrap_or_else(|| class_table.add(cname.clone()));
        class_of_pl.push(cid);
    }
    let mapped = paths
        .iter()
        .map(|p| {
            let mut np = ConcretePath::new();
            for pl in pls.ids() {
                for &t in p.cycles(pl) {
                    np.visit(class_of_pl[pl.index()], t);
                }
            }
            np
        })
        .collect();
    (class_table, mapped)
}

/// The (dominates, exclusive, stats) result of [`dom_excl_relations`].
pub type DomExclRelations = (Vec<(PlId, PlId)>, Vec<(PlId, PlId)>, CheckStats);

/// §V-B3: the dominates/exclusive relations over the IUV's PLs, computed
/// with the paper's cover templates. Returned as (dominates, exclusive)
/// pair lists; also bumps the checker-statistics account.
pub fn dom_excl_relations(design: &Design, opcode: Opcode, cfg: &SynthConfig) -> DomExclRelations {
    let harness = build_harness(
        design,
        &HarnessConfig {
            opcode,
            fetch_slot: cfg.slots.first().copied().unwrap_or(0),
            context: cfg.context,
        },
    );
    // Build dom/excl monitors for every ordered/unordered PL pair.
    let mut b = Builder::from_netlist(harness.netlist.clone());
    let n = harness.pls.len();
    let mut dom_sigs = Vec::new();
    let mut excl_sigs = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let vi = b.wire(harness.monitors[i].visited);
            let vj = b.wire(harness.monitors[j].visited);
            let c = sva::templates::dominates_cover(&mut b, vi, vj, &format!("dom_{i}_{j}"));
            dom_sigs.push(((i, j), c.id));
            if i < j {
                let e = sva::templates::exclusive_cover(&mut b, vi, vj, &format!("excl_{i}_{j}"));
                excl_sigs.push(((i, j), e.id));
            }
        }
    }
    let netlist = b.finish().expect("dom/excl monitored netlist");
    // Boolean-outcome queries: slice to the dom/excl covers plus the
    // harness assumes (all of which the activation clauses read).
    let targets: Vec<SignalId> = dom_sigs
        .iter()
        .chain(excl_sigs.iter())
        .map(|&(_, s)| s)
        .chain(harness.assumes.iter().copied())
        .collect();
    let elab = std::sync::Arc::new(mc::Elab::new(&netlist));
    let coi = std::sync::Arc::new(mc::CoiSlice::compute(&netlist, &targets));
    let mut checker = Checker::with_coi(
        &netlist,
        cfg.mc_config(),
        &arch_free_regs(design),
        elab,
        Some(coi),
    );
    let mut dominates = Vec::new();
    for ((i, j), sig) in dom_sigs {
        if checker.check_cover(sig, &harness.assumes).is_unreachable() {
            dominates.push((PlId(i as u32), PlId(j as u32)));
        }
    }
    let mut exclusive = Vec::new();
    for ((i, j), sig) in excl_sigs {
        if checker.check_cover(sig, &harness.assumes).is_unreachable() {
            exclusive.push((PlId(i as u32), PlId(j as u32)));
        }
    }
    (dominates, exclusive, checker.stats())
}

/// §V-B6: enumerate the possible *consecutive-visit run lengths* of one PL
/// across all of the IUV's executions (e.g. the serial divider's occupancy
/// range). Returns the sorted set of observed maximal run lengths.
pub fn enumerate_revisit_counts(
    design: &Design,
    opcode: Opcode,
    pl_name: &str,
    cfg: &SynthConfig,
) -> Vec<u64> {
    let harness = build_harness(
        design,
        &HarnessConfig {
            opcode,
            fetch_slot: cfg.slots.first().copied().unwrap_or(0),
            context: cfg.context,
        },
    );
    let pl = harness
        .pls
        .find(pl_name)
        .unwrap_or_else(|| panic!("no PL named `{pl_name}`"));
    let mut b = Builder::from_netlist(harness.netlist.clone());
    let visit = b.wire(harness.monitors(pl).visit_now);
    let width = 4u8;
    let (_cur, maxrun) = sva::consecutive_counter(&mut b, visit, width, "plrun");
    let done = b.wire(harness.iuv_done);
    let nonzero = b.red_or(maxrun);
    let interesting = b.and(done, nonzero);
    b.name(interesting, "revisit_cover");
    let netlist = b.finish().expect("revisit monitored netlist");
    let cover = netlist.find("revisit_cover").expect("named");
    let maxrun_sig = netlist.find("plrun").expect("named");
    let mut checker = Checker::with_free_regs(&netlist, cfg.mc_config(), &arch_free_regs(design));
    let mut counts = BTreeSet::new();
    while let Outcome::Reachable(trace) = checker.check_cover(cover, &harness.assumes) {
        let v = trace.value(trace.len() - 1, maxrun_sig);
        counts.insert(v);
        // Block this run-length value at the final frame.
        let clause: Vec<sat::Lit> = (0..width)
            .map(|bit| {
                // Reconstruct per-bit literals via a slice-free path:
                // the counter is a register; block on its bits.
                let lit = checker.final_frame_bit(maxrun_sig, bit);
                if (v >> bit) & 1 == 1 {
                    !lit
                } else {
                    lit
                }
            })
            .collect();
        checker.add_blocking_clause(&clause);
        if counts.len() > 32 {
            break;
        }
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod codec_tests {
    use super::*;

    fn sample() -> SlotSynthesis {
        let mut shapes = BTreeMap::new();
        let mut p1 = ConcretePath::new();
        p1.visit(PlId(0), 1);
        p1.visit(PlId(3), 4);
        p1.visit(PlId(3), 7);
        shapes.insert(vec![(true, false, false), (false, true, true)], p1);
        let mut p2 = ConcretePath::new();
        p2.visit(PlId(2), 0);
        shapes.insert(vec![(false, false, true)], p2);
        let mut stats = CheckStats {
            properties: 9,
            reachable: 4,
            unreachable: 3,
            coi_bits_before: 512,
            coi_bits_after: 120,
            discharged_static: 2,
            ..Default::default()
        };
        stats.count_undetermined(UndeterminedReason::BudgetExhausted);
        stats.count_undetermined(UndeterminedReason::FaultInjected);
        SlotSynthesis {
            shapes,
            complete: true,
            stats,
        }
    }

    /// The journal codec is a golden fixed point: encode ∘ decode ∘
    /// encode is byte-identical, so a resumed run re-journals records
    /// without churning the journal file.
    #[test]
    fn slot_synthesis_round_trip_is_byte_identical() {
        let original = sample();
        let once = original.encode();
        let decoded = SlotSynthesis::decode(&once).expect("own encoding decodes");
        assert_eq!(decoded.encode(), once, "encode∘decode∘encode drifted");
        assert_eq!(decoded.complete, original.complete);
        assert_eq!(decoded.shapes.len(), original.shapes.len());
        for (sig, path) in &original.shapes {
            let d = &decoded.shapes[sig];
            assert_eq!(d.pl_set(), path.pl_set());
            for pl in path.pl_set() {
                assert_eq!(d.cycles(pl), path.cycles(pl));
            }
        }
        assert_eq!(decoded.stats.properties, 9);
        assert_eq!(decoded.stats.undetermined, 2);
    }

    /// A torn journal tail — any truncation or appended garbage — must
    /// read as a cache miss (`None`), never as a wrong verdict.
    #[test]
    fn slot_synthesis_corrupt_tail_is_rejected() {
        let full = sample().encode();
        for cut in 1..=40.min(full.len() - 1) {
            let torn = &full[..full.len() - cut];
            assert!(
                SlotSynthesis::decode(torn).is_none(),
                "accepted a record torn {cut} bytes short"
            );
        }
        for garbage in ["x", " {}", "\0\0"] {
            let mut s = full.clone();
            s.push_str(garbage);
            assert!(
                SlotSynthesis::decode(&s).is_none(),
                "accepted trailing garbage {garbage:?}"
            );
        }
        // Wrong schema version: explicit miss, not a best-effort parse.
        let bumped = full.replacen("{\"v\":1,", "{\"v\":2,", 1);
        assert_ne!(bumped, full);
        assert!(SlotSynthesis::decode(&bumped).is_none());
    }
}
