//! A minimal hand-rolled JSON reader/writer. The container has no serde;
//! this covers the small fixed schemas the repo emits and consumes: the
//! machine-readable benchmark reports (`BENCH_perf.json`, written through
//! the pretty renderer — objects keep insertion order so reports diff
//! cleanly across runs) and the crash-safe synthesis journal (one compact
//! record per line, read back with [`Json::parse`]).

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite floats only; non-finite values render as `null`.
    Num(f64),
    Int(u64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Convenience constructor for insertion-ordered objects:
    /// `Json::obj([("k", Json::Int(1))])`.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no trailing newline — the journal's
    /// record-per-line format.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    /// Parses one JSON value from `src` (which must contain nothing else
    /// but whitespace around it). Numbers without `.`/`e` that fit a `u64`
    /// parse as [`Json::Int`]; everything else numeric parses as
    /// [`Json::Num`].
    pub fn parse(src: &str) -> Result<Json, ParseError> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError {
                pos,
                what: "trailing garbage after value",
            });
        }
        Ok(value)
    }

    /// The object field named `key`, when this is an object that has one.
    pub fn field(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, accepting `Int` and integral `Num`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as a float, accepting `Num` and `Int`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The bool value, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) if x.is_finite() => out.push_str(&format!("{x}")),
            Json::Num(_) => out.push_str("null"),
            Json::Int(n) => out.push_str(&format!("{n}")),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, depth, '[', ']', items.iter(), |out, depth, v| {
                v.write(out, depth);
            }),
            Json::Obj(fields) => {
                write_seq(out, depth, '{', '}', fields.iter(), |out, depth, (k, v)| {
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth);
                });
            }
        }
    }
}

/// A parse failure: byte offset plus a static description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub what: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError {
            pos: *pos,
            what: "unrecognized literal",
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(ParseError {
            pos: *pos,
            what: "unexpected end of input",
        });
    };
    match b {
        b'n' => expect_lit(bytes, pos, "null").map(|()| Json::Null),
        b't' => expect_lit(bytes, pos, "true").map(|()| Json::Bool(true)),
        b'f' => expect_lit(bytes, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(ParseError {
                            pos: *pos,
                            what: "expected ',' or ']' in array",
                        })
                    }
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(ParseError {
                        pos: *pos,
                        what: "expected ':' after object key",
                    });
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(ParseError {
                            pos: *pos,
                            what: "expected ',' or '}' in object",
                        })
                    }
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => Err(ParseError {
            pos: *pos,
            what: "unexpected character",
        }),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError {
            pos: *pos,
            what: "expected '\"'",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(ParseError {
                pos: *pos,
                what: "unterminated string",
            });
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                let Some(&esc) = bytes.get(*pos + 1) else {
                    return Err(ParseError {
                        pos: *pos,
                        what: "unterminated escape",
                    });
                };
                *pos += 2;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError {
                                pos: *pos,
                                what: "bad \\u escape",
                            })?;
                        *pos += 4;
                        // Surrogate pairs don't occur in the journal's own
                        // output; map lone surrogates to the replacement
                        // character rather than failing the record.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    _ => {
                        return Err(ParseError {
                            pos: *pos - 1,
                            what: "unknown escape",
                        })
                    }
                }
            }
            _ => {
                // Copy one UTF-8 scalar; the input is a &str so the
                // boundaries are valid by construction.
                let s = &bytes[*pos..];
                let step = match s[0] {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                out.push_str(std::str::from_utf8(&s[..step]).map_err(|_| ParseError {
                    pos: *pos,
                    what: "invalid utf-8",
                })?);
                *pos += step;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number text");
    if !is_float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
        pos: start,
        what: "malformed number",
    })
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq<T>(
    out: &mut String,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut each: impl FnMut(&mut String, usize, T),
) {
    if items.len() == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        out.push('\n');
        out.push_str(&"  ".repeat(depth + 1));
        each(out, depth + 1, item);
        if i + 1 < n {
            out.push(',');
        }
    }
    out.push('\n');
    out.push_str(&"  ".repeat(depth));
    out.push(close);
}

/// Line-framed JSON protocol helpers: one compact value per `\n`-terminated
/// line, the framing shared by the crash-safe journal and the `serve`
/// daemon's wire protocol. Reading tolerates interleaved blank lines;
/// anything else malformed is a hard error (a line protocol has no way to
/// resynchronise inside a line).
pub mod jsonl {
    use super::{Json, ParseError};
    use std::io::{BufRead, Write};

    /// Writes `value` as one compact line and flushes — on a socket this
    /// is what makes the event visible to the peer now, not at buffer
    /// pressure.
    pub fn write_line(out: &mut impl Write, value: &Json) -> std::io::Result<()> {
        out.write_all(value.render_compact().as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()
    }

    /// Reads the next non-blank line and parses it. `Ok(None)` at EOF.
    pub fn read_line(
        input: &mut impl BufRead,
    ) -> std::io::Result<Option<Result<Json, ParseError>>> {
        let mut line = String::new();
        loop {
            line.clear();
            if input.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if !line.trim().is_empty() {
                return Ok(Some(Json::parse(line.trim())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn scalars_render_flat() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(42).render(), "42\n");
        assert_eq!(Json::Num(1.5).render(), "1.5\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn containers_indent_and_keep_order() {
        let v = Json::Obj(vec![
            ("z".into(), Json::Int(1)),
            ("a".into(), Json::Arr(vec![Json::Int(2), Json::Int(3)])),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.render(),
            "{\n  \"z\": 1,\n  \"a\": [\n    2,\n    3\n  ],\n  \"empty\": []\n}\n"
        );
    }

    #[test]
    fn compact_render_round_trips_through_parse() {
        let v = Json::Obj(vec![
            ("kind".into(), Json::str("verdict")),
            ("ix".into(), Json::Int(7)),
            ("ok".into(), Json::Bool(true)),
            ("t".into(), Json::Num(1.25)),
            ("none".into(), Json::Null),
            (
                "tags".into(),
                Json::Arr(vec![Json::str("a\"b\\c\nd"), Json::Int(0)]),
            ),
        ]);
        let line = v.render_compact();
        assert!(!line.contains('\n'), "compact output must be one line");
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn parse_accepts_pretty_output_too() {
        let v = Json::Obj(vec![
            ("z".into(), Json::Int(1)),
            ("a".into(), Json::Arr(vec![Json::Int(2), Json::Int(3)])),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_torn_records() {
        for torn in [
            "{\"kind\":\"verdict\",\"ix\":",
            "{\"kind\":\"verd",
            "{\"kind\":\"verdict\"} extra",
            "",
        ] {
            assert!(Json::parse(torn).is_err(), "accepted torn record {torn:?}");
        }
    }

    #[test]
    fn jsonl_round_trips_values_and_skips_blanks() {
        use super::jsonl;
        let a = Json::obj([("op", Json::str("check")), ("ix", Json::Int(3))]);
        let b = Json::Arr(vec![Json::Bool(true), Json::Null]);
        let mut wire = Vec::new();
        jsonl::write_line(&mut wire, &a).unwrap();
        wire.extend_from_slice(b"\n   \n"); // blank keep-alives
        jsonl::write_line(&mut wire, &b).unwrap();
        let mut rd = std::io::BufReader::new(wire.as_slice());
        assert_eq!(jsonl::read_line(&mut rd).unwrap().unwrap().unwrap(), a);
        assert_eq!(jsonl::read_line(&mut rd).unwrap().unwrap().unwrap(), b);
        assert!(jsonl::read_line(&mut rd).unwrap().is_none(), "EOF is None");
        let mut torn = std::io::BufReader::new(&b"{\"k\":"[..]);
        assert!(
            jsonl::read_line(&mut torn).unwrap().unwrap().is_err(),
            "torn line must surface as a parse error, not EOF"
        );
    }

    #[test]
    fn accessor_helpers_coerce_expected_shapes() {
        assert_eq!(Json::Int(4).as_f64(), Some(4.0));
        assert_eq!(Json::Num(0.5).as_f64(), Some(0.5));
        assert_eq!(Json::str("x").as_f64(), None);
        let o = Json::obj([("a", Json::Int(1))]);
        assert_eq!(o.field("a").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn parse_handles_negative_and_float_numbers() {
        assert_eq!(Json::parse("-3").unwrap(), Json::Num(-3.0));
        assert_eq!(Json::parse("2.5e2").unwrap(), Json::Num(250.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::Int(u64::MAX)
        );
        assert!(Json::parse("\\u0041").is_err());
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::str("A"));
    }
}
