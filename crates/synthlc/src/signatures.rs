//! Leakage-signature synthesis (§V-C): attribute each candidate
//! transponder's decisions to typed transmitters' unsafe operands via
//! symbolic IFT queries, then assemble leakage signatures (§IV-D).

use crate::harness::{build_leak_harness, LeakHarness, LeakHarnessConfig, Operand, TxKind};
use isa::Opcode;
use mc::{CheckStats, Checker, Elab, FaultKind, McConfig, UndeterminedReason};
use mupath::{synthesize_isa_with, EngineOptions, InstrSynthesis, RobustOptions, SynthConfig};
use sat::BudgetPool;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use uarch::Design;
use uhb::Decision;

/// A typed transmitter: an explicit input to a leakage function (§IV-C).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TypedTransmitter {
    /// The transmitter's instruction type.
    pub opcode: Opcode,
    /// Its unsafe operand.
    pub operand: Operand,
    /// Intrinsic / dynamic (older, younger) / static.
    pub kind: TxKind,
}

impl std::fmt::Display for TypedTransmitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}^{}.{}", self.opcode, self.kind, self.operand)
    }
}

/// One dependence tag: decision `decision_ix` of the transponder is a
/// function of `tx`'s operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Tag {
    /// Index into the transponder's filtered decision list.
    pub decision_ix: usize,
    /// The typed transmitter.
    pub tx: TypedTransmitter,
    /// Presentation classification: primary leakage (observable without
    /// other transponders' help) vs secondary (stalls in shared structures
    /// behind the transmitter). Heuristic, as in Fig. 8's colouring.
    pub primary: bool,
}

/// A leakage signature (§IV-D): the yellow-highlighted components of
/// Fig. 5.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LeakageSignature {
    /// The transponder (function name's instruction part).
    pub transponder: Opcode,
    /// The decision source PL class (function name's location part).
    pub src: String,
    /// Typed transmitters with unsafe operands (explicit inputs).
    pub inputs: BTreeSet<TypedTransmitter>,
    /// Decision destinations (return values): the class-label sets.
    pub outputs: Vec<BTreeSet<String>>,
    /// Whether any input was tagged primary.
    pub has_primary: bool,
}

impl LeakageSignature {
    /// Renders the signature in the paper's Fig. 5 style.
    pub fn render(&self) -> String {
        let inputs: Vec<String> = self.inputs.iter().map(|t| t.to_string()).collect();
        let outputs: Vec<String> = self
            .outputs
            .iter()
            .map(|o| {
                let names: Vec<&str> = o.iter().map(String::as_str).collect();
                format!("{{{}}}", names.join(", "))
            })
            .collect();
        format!(
            "dst {}_{}({}) -> one of [{}]",
            self.transponder,
            self.src,
            inputs.join(", "),
            outputs.join(" | ")
        )
    }
}

/// The full SynthLC result for a design.
#[derive(Clone, Debug)]
pub struct LeakageReport {
    /// Design name.
    pub design: String,
    /// Per-instruction µPATH synthesis (phase 1).
    pub mupath: Vec<InstrSynthesis>,
    /// All synthesized signatures.
    pub signatures: Vec<LeakageSignature>,
    /// Instructions with more than one µPATH.
    pub candidate_transponders: Vec<Opcode>,
    /// Transponders with at least one signature.
    pub transponders: BTreeSet<Opcode>,
    /// All transmitters appearing in some signature.
    pub transmitters: BTreeSet<TypedTransmitter>,
    /// µPATH-phase property statistics.
    pub mupath_stats: CheckStats,
    /// IFT-phase property statistics.
    pub ift_stats: CheckStats,
    /// Jobs (across both phases) that degraded to an undetermined stand-in
    /// (panic, injected fault, or deadline) instead of completing.
    pub degraded_jobs: u64,
    /// Jobs replayed from the checkpoint journal instead of running.
    pub resumed_jobs: u64,
    /// Retry attempts (across both phases) spent recovering transiently
    /// failed jobs ([`RobustOptions::retries`]).
    pub retried_jobs: u64,
}

impl LeakageReport {
    /// Distinct transmitter opcodes of a given kind.
    pub fn transmitter_opcodes(&self, kind: TxKind) -> BTreeSet<Opcode> {
        self.transmitters
            .iter()
            .filter(|t| t.kind == kind)
            .map(|t| t.opcode)
            .collect()
    }

    /// Signatures of one transponder.
    pub fn signatures_of(&self, p: Opcode) -> Vec<&LeakageSignature> {
        self.signatures
            .iter()
            .filter(|s| s.transponder == p)
            .collect()
    }
}

/// SynthLC configuration.
#[derive(Clone, Debug)]
pub struct LeakConfig {
    /// µPATH-phase configuration.
    pub mupath: SynthConfig,
    /// Transmitter opcode candidates (typically one representative per
    /// datapath class — results generalise to the class, as Fig. 8 groups
    /// them).
    pub transmitters: Vec<Opcode>,
    /// Transmitter typings to test.
    pub kinds: Vec<TxKind>,
    /// IFT-phase BMC bound.
    pub bound: usize,
    /// IFT-phase conflict budget.
    pub conflict_budget: Option<u64>,
    /// Worker threads; `0` selects [`mc::default_threads`] (the
    /// `SYNTHLC_THREADS` environment knob / available parallelism).
    pub threads: usize,
    /// Globally shared conflict/propagation account across both phases.
    /// Uncapped pools aggregate statistics only; capped pools cut off
    /// queries once the global cap is hit (scheduling-dependent — see
    /// `DESIGN.md` §6).
    pub budget_pool: Option<Arc<BudgetPool>>,
    /// Base fetch slot for the transponder/transmitter arrangement. The
    /// default 0 places the earliest tracked instruction first after reset;
    /// stateful DUVs (the cache) need `slot_base >= 1` so a context
    /// transaction can warm persistent state (a cold cache cannot hit,
    /// making first-request path choices trivially operand-independent).
    pub slot_base: usize,
    /// Keep only the top-K decision sources per transponder, ranked by
    /// their number of destination PL sets — the artifact's own trimming
    /// for expensive sweeps (Appendix §I-F: "select three source PLs
    /// apiece ... with the highest number of destination PL sets").
    pub max_sources: Option<usize>,
    /// Slice each decision-cover netlist to the cone of influence of its
    /// covers and assume signals before bit-blasting. Verdict-preserving
    /// (see `mc::CoiSlice`); purely a CNF-size reduction.
    pub coi: bool,
    /// Discharge (transmitter operand, decision) pairs with no structural
    /// taint path as `Unreachable` without a SAT call (see
    /// [`ift::taint_reachable`]). Debug builds still run the precise query
    /// and assert agreement.
    pub static_prune: bool,
    /// Fault-tolerance knobs (cancellation, fault injection, journal),
    /// shared with the µPATH phase. See `DESIGN.md` §8.
    pub robust: RobustOptions,
}

impl LeakConfig {
    /// A default configuration for a design: representative transmitters,
    /// all four typings.
    pub fn for_design(design: &Design) -> Self {
        Self {
            mupath: SynthConfig::for_design(design),
            transmitters: vec![
                Opcode::Add,
                Opcode::Mul,
                Opcode::Div,
                Opcode::Lw,
                Opcode::Sw,
                Opcode::Beq,
                Opcode::Jal,
                Opcode::Jalr,
            ],
            kinds: vec![
                TxKind::Intrinsic,
                TxKind::DynamicOlder,
                TxKind::DynamicYounger,
                TxKind::Static,
            ],
            bound: design.max_latency + 10,
            conflict_budget: Some(4_000_000),
            threads: 0,
            slot_base: 0,
            max_sources: None,
            budget_pool: None,
            coi: true,
            static_prune: true,
            robust: RobustOptions::default(),
        }
    }

    /// The effective worker count (resolving `0` to the environment
    /// default).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            mc::default_threads()
        } else {
            self.threads
        }
    }

    fn mc_config(&self) -> McConfig {
        McConfig {
            bound: self.bound,
            conflict_budget: self.conflict_budget,
            bound_is_complete: true,
            try_induction: false,
            induction_depth: 0,
        }
    }
}

/// PL classes in which µPATH variability is a *shared-structure stall*
/// rather than the transponder's own execution behaviour; used for the
/// primary/secondary presentation split (§VII-A1).
const SHARED_CLASSES: &[&str] = &["IF", "ID", "scbIss", "scbFin", "scbCmt"];

fn classify_primary(kind: TxKind, src_class: &str) -> bool {
    kind == TxKind::Intrinsic || !SHARED_CLASSES.contains(&src_class)
}

/// The slot arrangement for a transmitter typing: (slot_p, slot_t),
/// shifted by the configured base slot.
fn slots_for(kind: TxKind, base: usize) -> (usize, usize) {
    match kind {
        TxKind::Intrinsic => (base, base),
        TxKind::DynamicOlder | TxKind::Static => (base + 1, base),
        TxKind::DynamicYounger => (base, base + 1),
    }
}

/// Static taint-reachability pruning state, computed once per design on the
/// *original* (uninstrumented) netlist: the forward-reachable set of each
/// operand's taint-introduction registers, and the µFSM state registers
/// backing each destination class. A decision-taint cover can only fire if
/// some destination class's µFSM register is structurally reachable by the
/// operand's taint — otherwise every taint shadow in the cover's support is
/// identically zero and the query is `Unreachable` by construction.
struct StaticPrune {
    /// Forward taint-reach sets, indexed `[rs1, rs2]`.
    reach: [std::collections::HashSet<netlist::SignalId>; 2],
    /// Per class PlId: the vars + pcr of every µFSM owning a member PL.
    class_regs: Vec<Vec<netlist::SignalId>>,
}

impl StaticPrune {
    fn build(design: &Design) -> Self {
        let ann = &design.annotations;
        let blocked: Vec<netlist::SignalId> =
            ann.arf.iter().chain(ann.amem.iter()).copied().collect();
        // Taint-introduction registers per operand, mirroring
        // `build_leak_harness`: ARF designs taint the register named by the
        // rs field (any ARF register), request-driven DUVs taint the
        // per-operand request register.
        let use_arf = design.rs_fields.is_some() && !ann.arf.is_empty();
        let (src1, src2) = if use_arf {
            (ann.arf.clone(), ann.arf.clone())
        } else {
            (vec![ann.operand_regs[0]], vec![ann.operand_regs[1]])
        };
        let reach = [
            ift::taint_reachable(&design.netlist, &src1, &blocked),
            ift::taint_reachable(&design.netlist, &src2, &blocked),
        ];
        // Class table built exactly like the harness's: candidate-state
        // names with trailing digits trimmed, first-seen order.
        let mut class_table = uhb::PlTable::new();
        let mut class_regs: Vec<Vec<netlist::SignalId>> = Vec::new();
        for ufsm in &ann.ufsms {
            for st in ufsm.candidate_states(&design.netlist) {
                let cname = st
                    .name
                    .trim_end_matches(|c: char| c.is_ascii_digit())
                    .to_owned();
                let cid = match class_table.find(&cname) {
                    Some(c) => c,
                    None => {
                        class_regs.push(Vec::new());
                        class_table.add(cname)
                    }
                };
                let regs = &mut class_regs[cid.index()];
                for &r in ufsm.vars.iter().chain(std::iter::once(&ufsm.pcr)) {
                    if !regs.contains(&r) {
                        regs.push(r);
                    }
                }
            }
        }
        Self { reach, class_regs }
    }

    /// Whether taint introduced at `operand` can structurally reach the
    /// µFSM state of any destination class of `d`.
    fn may_reach(&self, operand: Operand, d: &Decision) -> bool {
        let reach = &self.reach[match operand {
            Operand::Rs1 => 0,
            Operand::Rs2 => 1,
        }];
        d.dst
            .iter()
            .any(|c| self.class_regs[c.index()].iter().any(|r| reach.contains(r)))
    }
}

/// Runs the IFT queries of one (transponder, slot arrangement, transmitter
/// typing) job. The harness is shared immutably across every job of its
/// slot arrangement; the checker — unrolling + SAT solver over the
/// pairing's merged decision-cover netlist — is checked out of the run's
/// [`mc::SolverPool`] by the caller and shared (sequenced by ticket) across
/// *every* unit of the pairing, so learnt clauses carry between
/// transponders and typings. All per-unit state lives in the assumptions.
#[allow(clippy::too_many_arguments)]
fn ift_kind_job(
    p: Opcode,
    decisions: &[Decision],
    kind: TxKind,
    harness: &LeakHarness,
    covers: &[netlist::SignalId],
    checker: &mut Checker<'_>,
    prune: Option<&StaticPrune>,
    cfg: &LeakConfig,
) -> (Vec<Tag>, CheckStats) {
    let mut tags = Vec::new();
    let t_candidates: Vec<Opcode> = if kind == TxKind::Intrinsic {
        vec![p]
    } else {
        cfg.transmitters.clone()
    };
    for t in t_candidates {
        for operand in [Operand::Rs1, Operand::Rs2] {
            let reads = match operand {
                Operand::Rs1 => t.reads_rs1(),
                Operand::Rs2 => t.reads_rs2(),
            };
            if !reads {
                continue;
            }
            for (decision_ix, d) in decisions.iter().enumerate() {
                let mut assumes = harness.base_assumes.clone();
                assumes.push(harness.p_opcode_assume(p));
                if !harness.intrinsic {
                    assumes.push(harness.t_opcode_assume(t));
                }
                assumes.push(harness.operand_assume(operand));
                assumes.push(harness.flush_assume(kind));
                if kind != TxKind::Intrinsic {
                    assumes.push(harness.relation_assume(kind, d.src));
                }
                let discharged = prune.is_some_and(|pr| !pr.may_reach(operand, d));
                let outcome = if discharged {
                    checker.note_static_discharge();
                    if cfg!(debug_assertions) {
                        // Cross-check: the precise IFT query must agree with
                        // the static over-approximation.
                        let o = checker.check_cover(covers[decision_ix], &assumes);
                        debug_assert!(
                            !o.is_reachable(),
                            "static taint prune contradicted precise IFT query \
                             ({p} {kind} {operand} decision {decision_ix})"
                        );
                        o
                    } else {
                        checker.discharge_unreachable()
                    }
                } else {
                    checker.check_cover(covers[decision_ix], &assumes)
                };
                if outcome.is_reachable() {
                    let src_class = harness.class_table().name(d.src);
                    tags.push(Tag {
                        decision_ix,
                        tx: TypedTransmitter {
                            opcode: t,
                            operand,
                            kind,
                        },
                        primary: classify_primary(kind, src_class),
                    });
                }
            }
        }
    }
    (tags, checker.stats())
}

/// Runs the complete SynthLC flow (Fig. 6 bottom): µPATH synthesis, then
/// symbolic IFT attribution, then signature assembly.
pub fn synthesize_leakage(
    design: &Design,
    transponders: &[Opcode],
    cfg: &LeakConfig,
) -> LeakageReport {
    // Phase 1: RTL2MµPATH.
    let threads = cfg.effective_threads();
    let engine = EngineOptions {
        threads,
        budget_pool: cfg.budget_pool.clone(),
        robust: cfg.robust.clone(),
    };
    let isa_synth = synthesize_isa_with(design, transponders, &cfg.mupath, &engine);
    let mupath_stats = isa_synth.stats;
    let mut degraded_jobs = isa_synth.degraded_jobs;
    let mut resumed_jobs = isa_synth.resumed_jobs;
    let mut retried_jobs = isa_synth.retried_jobs;

    // Phase 2: symbolic IFT per candidate transponder.
    struct Work {
        p: Opcode,
        decisions: Vec<Decision>,
    }
    let work: Vec<Work> = isa_synth
        .instrs
        .iter()
        .filter(|i| i.is_candidate_transponder())
        .map(|i| {
            let mut decisions: Vec<Decision> = i
                .class_decisions
                .iter()
                .filter(|d| !d.dst.is_empty())
                .cloned()
                .collect();
            if let Some(k) = cfg.max_sources {
                // Rank sources by their number of distinct destination sets.
                let mut per_src: BTreeMap<uhb::PlId, usize> = BTreeMap::new();
                for d in &decisions {
                    *per_src.entry(d.src).or_default() += 1;
                }
                let mut ranked: Vec<(uhb::PlId, usize)> = per_src.into_iter().collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let keep: BTreeSet<uhb::PlId> =
                    ranked.into_iter().take(k).map(|(s, _)| s).collect();
                decisions.retain(|d| keep.contains(&d.src));
            }
            Work {
                p: i.opcode,
                decisions,
            }
        })
        .collect();
    // Phase 2a: one immutable harness per slot arrangement (the expensive
    // IFT instrumentation + tracker circuitry), shared by every transponder
    // and typing of that arrangement. Transponder binding happens per query
    // through assume signals, so one harness serves them all.
    let pairings: Vec<((usize, usize), Vec<TxKind>)> = if work.is_empty() {
        Vec::new()
    } else {
        let mut by_slots: BTreeMap<(usize, usize), Vec<TxKind>> = BTreeMap::new();
        for &k in &cfg.kinds {
            by_slots
                .entry(slots_for(k, cfg.slot_base))
                .or_default()
                .push(k);
        }
        by_slots.into_iter().collect()
    };
    let p_opcodes: Vec<Opcode> = work.iter().map(|w| w.p).collect();
    let harnesses: Vec<Arc<LeakHarness>> = mc::run_jobs(
        pairings.iter().map(|(s, _)| *s).collect(),
        threads,
        |_, (slot_p, slot_t)| {
            Arc::new(build_leak_harness(
                design,
                &LeakHarnessConfig {
                    slot_p,
                    slot_t,
                    p_opcodes: p_opcodes.clone(),
                    t_opcodes: cfg.transmitters.clone(),
                    no_cf_context: true,
                },
            ))
        },
    );

    // Phase 2b: one merged decision-cover netlist per arrangement, holding
    // *every* transponder's covers side by side, elaborated once. All of a
    // pairing's units — every (transponder, typing) — then share one
    // pooled solver context over it.
    struct CoverNet {
        netlist: netlist::Netlist,
        /// Cover signals per work index (same order as `work`).
        covers: Vec<Vec<netlist::SignalId>>,
        elab: Arc<Elab>,
        coi: Option<Arc<mc::CoiSlice>>,
    }
    let cover_nets: Vec<CoverNet> =
        mc::run_jobs((0..pairings.len()).collect(), threads, |_, pi| {
            let works: Vec<&[Decision]> = work.iter().map(|w| w.decisions.as_slice()).collect();
            let (netlist, covers) = harnesses[pi].decision_covers_multi(&works);
            let elab = Arc::new(Elab::new(&netlist));
            // The slice must keep every signal a query can reference: all
            // transponders' covers plus the full assume universe of the
            // harness (harness signal ids are preserved by the cover-netlist
            // extension).
            let coi = cfg.coi.then(|| {
                let mut targets: Vec<netlist::SignalId> =
                    covers.iter().flatten().copied().collect();
                targets.extend(harnesses[pi].assume_signal_universe());
                Arc::new(mc::CoiSlice::compute(&netlist, &targets))
            });
            CoverNet {
                netlist,
                covers,
                elab,
                coi,
            }
        });

    // Phase 2c: the query jobs — one per (transponder, arrangement,
    // typing), all of an arrangement sharing its pooled checker.
    let units: Vec<(usize, usize, TxKind)> = (0..work.len())
        .flat_map(|wi| {
            pairings
                .iter()
                .enumerate()
                .flat_map(move |(pi, (_, kinds))| kinds.iter().map(move |&k| (wi, pi, k)))
        })
        .collect();
    let free: Vec<netlist::SignalId> = design
        .annotations
        .arf
        .iter()
        .chain(design.annotations.amem.iter())
        .copied()
        .collect();
    let prune = cfg.static_prune.then(|| StaticPrune::build(design));
    let fp = mupath::design_fingerprint(design);
    // One pool key per arrangement: the unit's checkout ticket is its rank
    // among the arrangement's units in job order, so the pooled solver
    // sees an identical query stream for every worker count.
    let keys: Vec<mc::PoolKey> = pairings
        .iter()
        .map(|&((sp, st), _)| mc::PoolKey::reset(fnv(format!("{fp:016x}:{sp}:{st}").as_bytes())))
        .collect();
    let tickets: Vec<usize> = {
        let mut next = vec![0usize; pairings.len()];
        units
            .iter()
            .map(|&(_, pi, _)| {
                let t = next[pi];
                next[pi] += 1;
                t
            })
            .collect()
    };
    // Resolve journal hits on the coordinating thread (counting them).
    // Replay is *group-atomic* per arrangement: either every unit of a
    // pairing replays, or the whole pairing reruns — a partial replay
    // would leave checkout-ticket gaps and make the shared solver's state
    // depend on which subset resumed.
    let unit_keys: Vec<Option<String>> = units
        .iter()
        .map(|&(wi, pi, kind)| {
            cfg.robust.journal.as_ref().map(|_| {
                ift_job_key(
                    fp,
                    cfg,
                    work[wi].p,
                    &work[wi].decisions,
                    pairings[pi].0,
                    kind,
                )
            })
        })
        .collect();
    // One replayed IFT unit: its leaking tag set plus the query stats.
    type IftUnitRecord = (Vec<Tag>, CheckStats);
    let cached_groups: Vec<Option<Vec<IftUnitRecord>>> = (0..pairings.len())
        .map(|pi| {
            let journal = cfg.robust.journal.as_deref()?;
            let group: Option<Vec<IftUnitRecord>> = units
                .iter()
                .enumerate()
                .filter(|&(_, &(_, upi, _))| upi == pi)
                .map(|(ui, _)| {
                    let k = unit_keys[ui].as_deref()?;
                    decode_ift_record(&journal.get(k)?)
                })
                .collect();
            if let Some(g) = &group {
                resumed_jobs += g.len() as u64;
            }
            group
        })
        .collect();
    let pool = mc::SolverPool::new();
    // The per-unit body, shared by the parallel batch (ticket =
    // `tickets[ix]`, attempt 0) and by sequential coordinator-thread
    // retries (continuation tickets, attempt ≥ 1).
    let run_unit = |ix: usize, wi: usize, pi: usize, kind: TxKind, ticket: usize, attempt: u32| {
        let fault = cfg.robust.faults.fault_for_attempt("ift", ix, attempt);
        let cn = &cover_nets[pi];
        let mut ctx = pool.checkout(keys[pi], ticket, cfg.bound, || {
            let mut c = Checker::with_coi(
                &cn.netlist,
                McConfig {
                    bound: 0,
                    ..cfg.mc_config()
                },
                &free,
                Arc::clone(&cn.elab),
                cn.coi.clone(),
            );
            if let Some(p) = &cfg.budget_pool {
                c.set_budget_pool(Arc::clone(p));
            }
            if let Some(token) = &cfg.robust.cancel {
                c.set_cancel_token(Arc::clone(token));
            }
            c
        });
        // Injected panics fire after checkout so the guard's drop releases
        // the next ticket (discarding the checker; the pairing's next unit
        // deterministically rebuilds it).
        if fault == Some(FaultKind::Panic) {
            panic!("injected fault: panic in ift job {ix}");
        }
        match fault {
            Some(FaultKind::ForceUnknown) => ctx.set_fault(UndeterminedReason::FaultInjected),
            Some(FaultKind::DeadlineExpired) => ctx.set_fault(UndeterminedReason::Deadline),
            _ => {}
        }
        let w = &work[wi];
        let r = ift_kind_job(
            w.p,
            &w.decisions,
            kind,
            &harnesses[pi],
            &cn.covers[wi],
            &mut ctx,
            prune.as_ref(),
            cfg,
        );
        drop(ctx);
        // Only clean verdicts are journaled (degraded jobs rerun on
        // resume), so a resumed run converges to the uninterrupted result.
        if fault.is_none() && r.1.degraded() == 0 {
            if let (Some(j), Some(k)) = (cfg.robust.journal.as_deref(), unit_keys[ix].as_deref()) {
                j.put(k, &encode_ift_record(&r.0, &r.1));
            }
        }
        r
    };
    let mut supervised = mc::run_jobs_supervised(units.clone(), threads, |ix, (wi, pi, kind)| {
        if let Some(group) = &cached_groups[pi] {
            // `tickets[ix]` is exactly this unit's rank within its
            // pairing, i.e. its index into the replayed group.
            return group[tickets[ix]].clone();
        }
        run_unit(ix, wi, pi, kind, tickets[ix], 0)
    });
    // Transient-failure recovery, mirroring the µPATH phase: rerun failed
    // or degraded units sequentially in job order, each consuming its
    // pairing's next checkout ticket, so the merged report stays
    // worker-count independent.
    if cfg.robust.retries > 0 {
        let mut next_ticket: Vec<usize> = (0..pairings.len())
            .map(|pi| {
                if cached_groups[pi].is_some() {
                    0
                } else {
                    units.iter().filter(|&&(_, upi, _)| upi == pi).count()
                }
            })
            .collect();
        for (ix, &(wi, pi, kind)) in units.iter().enumerate() {
            for attempt in 1..=cfg.robust.retries {
                let needs_retry = match &supervised[ix] {
                    Ok((_, st)) => st.degraded() > 0,
                    Err(_) => true,
                };
                if !needs_retry {
                    break;
                }
                if cfg.robust.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                    break;
                }
                retried_jobs += 1;
                let ticket = next_ticket[pi];
                next_ticket[pi] += 1;
                supervised[ix] = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_unit(ix, wi, pi, kind, ticket, attempt)
                }))
                .map_err(|payload| mc::JobFailure {
                    job_id: ix,
                    payload_msg: payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into()),
                    backtrace_hint: format!("panicked again on retry attempt {attempt}"),
                });
            }
        }
    }
    let results: Vec<(Vec<Tag>, CheckStats)> = supervised
        .into_iter()
        .map(|r| match r {
            Ok(r) => {
                if r.1.degraded() > 0 {
                    degraded_jobs += 1;
                }
                r
            }
            Err(_) => {
                degraded_jobs += 1;
                let mut stats = CheckStats {
                    properties: 1,
                    ..Default::default()
                };
                stats.count_undetermined(UndeterminedReason::JobPanicked);
                (Vec::new(), stats)
            }
        })
        .collect();

    // Phase 3: assemble signatures.
    let mut ift_stats = CheckStats::default();
    let mut signatures = Vec::new();
    let mut transmitters = BTreeSet::new();
    let mut transponders_set = BTreeSet::new();
    // A dummy class table lookup: recompute names from one harness-free
    // source — the decisions carry class PlIds; rebuild the class table the
    // same way the harness does.
    let class_table = {
        let mut pls = uhb::PlTable::new();
        for ufsm in &design.annotations.ufsms {
            for st in ufsm.candidate_states(&design.netlist) {
                let cname = st
                    .name
                    .trim_end_matches(|c: char| c.is_ascii_digit())
                    .to_owned();
                if pls.find(&cname).is_none() {
                    pls.add(cname);
                }
            }
        }
        pls
    };
    // Merge job results back per transponder, in job order — the merged
    // tag lists are identical for every worker count.
    let mut tags_per_work: Vec<Vec<Tag>> = work.iter().map(|_| Vec::new()).collect();
    for (&(w_ix, _, _), (tags, st)) in units.iter().zip(results) {
        ift_stats.absorb(&st);
        tags_per_work[w_ix].extend(tags);
    }
    for (w, tags) in work.iter().zip(tags_per_work) {
        // Group tags per decision source.
        let mut by_src: BTreeMap<uhb::PlId, Vec<&Tag>> = BTreeMap::new();
        for t in &tags {
            by_src
                .entry(w.decisions[t.decision_ix].src)
                .or_default()
                .push(t);
        }
        for (src, src_tags) in by_src {
            let tagged_decisions: BTreeSet<usize> =
                src_tags.iter().map(|t| t.decision_ix).collect();
            // §V-C1 footnote 3: at least two operand-dependent decisions at
            // this source are needed for >1 observations.
            if tagged_decisions.len() < 2 {
                continue;
            }
            let inputs: BTreeSet<TypedTransmitter> = src_tags.iter().map(|t| t.tx).collect();
            let outputs: Vec<BTreeSet<String>> = w
                .decisions
                .iter()
                .filter(|d| d.src == src)
                .map(|d| {
                    d.dst
                        .iter()
                        .map(|&c| class_table.name(c).to_owned())
                        .collect()
                })
                .collect();
            let has_primary = src_tags.iter().any(|t| t.primary);
            transmitters.extend(inputs.iter().copied());
            transponders_set.insert(w.p);
            signatures.push(LeakageSignature {
                transponder: w.p,
                src: class_table.name(src).to_owned(),
                inputs,
                outputs,
                has_primary,
            });
        }
    }

    let candidate_transponders = isa_synth.candidate_transponders();
    LeakageReport {
        design: design.name.clone(),
        mupath: isa_synth.instrs,
        signatures,
        candidate_transponders,
        transponders: transponders_set,
        transmitters,
        mupath_stats,
        ift_stats,
        degraded_jobs,
        resumed_jobs,
        retried_jobs,
    }
}

/// FNV-1a over a byte string.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The stable journal key of one IFT unit job: design fingerprint, job
/// identity, and every configuration knob (including the transponder's
/// decision list, hashed) that can change the verdict.
fn ift_job_key(
    fp: u64,
    cfg: &LeakConfig,
    p: Opcode,
    decisions: &[Decision],
    slots: (usize, usize),
    kind: TxKind,
) -> String {
    let dhash = fnv(format!("{:?}|{decisions:?}", cfg.transmitters).as_bytes());
    format!(
        "ift:{fp:016x}:{p:?}:{}:{}:{kind:?}:{}:{:?}:{}:{}:{dhash:016x}",
        slots.0, slots.1, cfg.bound, cfg.conflict_budget, cfg.coi, cfg.static_prune
    )
}

/// Serializes one IFT unit verdict for the journal (durations excluded:
/// nondeterministic). Tags are `[decision_ix, opcode, operand, kind,
/// primary]` rows with enum discriminants as the stable encoding.
fn encode_ift_record(tags: &[Tag], stats: &CheckStats) -> String {
    use jsonio::Json;
    let tags: Vec<Json> = tags
        .iter()
        .map(|t| {
            Json::Arr(vec![
                Json::Int(t.decision_ix as u64),
                Json::Int(t.tx.opcode as u64),
                Json::Int(match t.tx.operand {
                    Operand::Rs1 => 0,
                    Operand::Rs2 => 1,
                }),
                Json::Int(match t.tx.kind {
                    TxKind::Intrinsic => 0,
                    TxKind::DynamicOlder => 1,
                    TxKind::DynamicYounger => 2,
                    TxKind::Static => 3,
                }),
                Json::Bool(t.primary),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("v".into(), Json::Int(1)),
        ("tags".into(), Json::Arr(tags)),
        ("stats".into(), mupath::encode_check_stats(stats)),
    ])
    .render_compact()
}

/// Parses a journaled [`encode_ift_record`]; `None` (a cache miss) on any
/// mismatch.
fn decode_ift_record(s: &str) -> Option<(Vec<Tag>, CheckStats)> {
    let j = jsonio::Json::parse(s).ok()?;
    if j.field("v")?.as_u64()? != 1 {
        return None;
    }
    let mut tags = Vec::new();
    for t in j.field("tags")?.as_arr()? {
        let t = t.as_arr()?;
        if t.len() != 5 {
            return None;
        }
        let opcode_n = t[1].as_u64()?;
        let opcode = Opcode::ALL
            .iter()
            .copied()
            .find(|&o| o as u64 == opcode_n)?;
        tags.push(Tag {
            decision_ix: t[0].as_u64()? as usize,
            tx: TypedTransmitter {
                opcode,
                operand: match t[2].as_u64()? {
                    0 => Operand::Rs1,
                    1 => Operand::Rs2,
                    _ => return None,
                },
                kind: match t[3].as_u64()? {
                    0 => TxKind::Intrinsic,
                    1 => TxKind::DynamicOlder,
                    2 => TxKind::DynamicYounger,
                    3 => TxKind::Static,
                    _ => return None,
                },
            },
            primary: t[4].as_bool()?,
        });
    }
    Some((tags, mupath::decode_check_stats(j.field("stats")?)?))
}

#[cfg(test)]
mod codec_tests {
    use super::*;

    fn sample() -> (Vec<Tag>, CheckStats) {
        let tags = vec![
            Tag {
                decision_ix: 0,
                tx: TypedTransmitter {
                    opcode: Opcode::Div,
                    operand: Operand::Rs1,
                    kind: TxKind::Intrinsic,
                },
                primary: true,
            },
            Tag {
                decision_ix: 3,
                tx: TypedTransmitter {
                    opcode: Opcode::Lw,
                    operand: Operand::Rs2,
                    kind: TxKind::DynamicYounger,
                },
                primary: false,
            },
        ];
        let stats = CheckStats {
            properties: 5,
            reachable: 2,
            unreachable: 3,
            coi_bits_before: 64,
            coi_bits_after: 17,
            ..Default::default()
        };
        (tags, stats)
    }

    /// The IFT journal codec is a golden fixed point (encode ∘ decode ∘
    /// encode byte-identical) so a resumed leakage run re-journals
    /// records without churning the journal file.
    #[test]
    fn ift_record_round_trip_is_byte_identical() {
        let (tags, stats) = sample();
        let once = encode_ift_record(&tags, &stats);
        let (dtags, dstats) = decode_ift_record(&once).expect("own encoding decodes");
        assert_eq!(encode_ift_record(&dtags, &dstats), once);
        assert_eq!(dtags, tags);
        assert_eq!(dstats.properties, stats.properties);
        assert_eq!(dstats.coi_bits_after, stats.coi_bits_after);
        // The empty record is also a fixed point (units with no tags).
        let empty = encode_ift_record(&[], &CheckStats::default());
        let (et, es) = decode_ift_record(&empty).unwrap();
        assert!(et.is_empty());
        assert_eq!(encode_ift_record(&et, &es), empty);
    }

    /// A torn journal tail must read as a cache miss, never as a wrong
    /// (e.g. tag-dropping) verdict — and out-of-range discriminants are
    /// rejected rather than coerced.
    #[test]
    fn ift_record_corrupt_tail_is_rejected() {
        let (tags, stats) = sample();
        let full = encode_ift_record(&tags, &stats);
        for cut in 1..=40.min(full.len() - 1) {
            assert!(
                decode_ift_record(&full[..full.len() - cut]).is_none(),
                "accepted a record torn {cut} bytes short"
            );
        }
        let mut trailing = full.clone();
        trailing.push_str("{}");
        assert!(decode_ift_record(&trailing).is_none());
        assert!(decode_ift_record(&full.replacen("\"v\":1", "\"v\":7", 1)).is_none());
        // Operand discriminant 2 does not exist.
        let bad = full.replacen(",1,2,", ",2,2,", 1);
        assert_ne!(bad, full);
        assert!(decode_ift_record(&bad).is_none());
    }
}
