//! The SynthLC verification harness (§V-C1, Fig. 7): an IFT-instrumented
//! design plus trackers for a transponder instance `iP` and a transmitter
//! instance `iT`, with assume signals encoding Assumptions 1/2a/2b/3 and the
//! taint-introduction binding, and decision-taint covers per transponder
//! decision.
//!
//! One harness (and one incremental model checker) serves *every*
//! (transmitter-opcode, operand, decision) query for a given
//! (transponder, slot arrangement): the per-query differences are all
//! `assume` signals, so queries share the solver and its learnt clauses —
//! the reproduction's answer to the paper's JasperGold job pool.

use ift::{instrument, IftOptions, Instrumented};
use isa::Opcode;
use netlist::{Builder, Netlist, SignalId, Wire};
use std::collections::BTreeSet;
use uarch::Design;
use uhb::{Decision, PlId, PlTable};

/// Which architectural operand of the transmitter carries the taint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Operand {
    /// First source register (`rs1`).
    Rs1,
    /// Second source register (`rs2`).
    Rs2,
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Rs1 => f.write_str("rs1"),
            Operand::Rs2 => f.write_str("rs2"),
        }
    }
}

/// Transmitter typing (§IV-C): how `iT` relates to the transponder `iP`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TxKind {
    /// `iT = iP` (Assumption 1).
    Intrinsic,
    /// `iT` older than `iP` and in flight when `iP` decides (Assumption 2a).
    DynamicOlder,
    /// `iT` younger than `iP` and in flight when `iP` decides (Assumption
    /// 2b) — the speculative-interference-attack shape.
    DynamicYounger,
    /// `iT` dematerialized before `iP` decides; only influence through
    /// persistent state counts (Assumption 3).
    Static,
}

impl std::fmt::Display for TxKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TxKind::Intrinsic => "N",
            TxKind::DynamicOlder => "D.O",
            TxKind::DynamicYounger => "D.Y",
            TxKind::Static => "S",
        };
        f.write_str(s)
    }
}

/// Monitors for one tracked dynamic instruction.
#[derive(Clone, Debug)]
pub struct Tracked {
    /// Sticky: the instruction has been fetched.
    pub seen: SignalId,
    /// Per-PL occupancy bits (indexed like the design's PL table).
    pub visit_now: Vec<SignalId>,
    /// The instruction occupies some PL this cycle.
    pub inflight: SignalId,
    /// The instruction has materialized and dematerialized.
    pub done: SignalId,
    /// The instruction issues this cycle (taint-introduction timing for
    /// request-driven DUVs).
    pub issue_now: SignalId,
    /// The instruction currently occupies the issue/decode stage
    /// (taint-introduction window for register-file reads).
    pub stage_now: SignalId,
}

/// The leak harness for one (transponder-slot, transmitter-slot) pairing.
#[derive(Clone, Debug)]
pub struct LeakHarness {
    /// IFT-instrumented, monitored netlist.
    pub netlist: Netlist,
    /// PL table (same order as the design's µFSM declaration).
    pub pls: PlTable,
    /// Per-PL class labels.
    pub classes: Vec<String>,
    /// The transponder tracker.
    pub ip: Tracked,
    /// The transmitter tracker (same monitors as `ip` when intrinsic).
    pub it: Tracked,
    /// Base assumes that hold for every query (slot opcode binding is *not*
    /// included — see [`LeakHarness::opcode_assume`]).
    pub base_assumes: Vec<SignalId>,
    /// Assume: `taint_flush` is held at zero (Assumptions 1/2).
    pub flush_zero: SignalId,
    /// Assume: `taint_flush` pulses exactly when `iT` dematerializes
    /// (Assumption 3).
    pub flush_at_demat: SignalId,
    /// Assume per operand: taint enters exactly that operand register at
    /// `iT`'s issue.
    pub taint_rs1: SignalId,
    /// See [`LeakHarness::taint_rs1`].
    pub taint_rs2: SignalId,
    /// The underlying instrumentation (taint signal lookup).
    pub inst: Instrumented,
    /// Whether `iP` and `iT` are the same dynamic instruction.
    pub intrinsic: bool,
    opcode_assume_p: Vec<(Opcode, SignalId)>,
    opcode_assume_t: Vec<(Opcode, SignalId)>,
    /// Assume per PL-class: `iT` is in flight whenever `iP` occupies a PL
    /// of that class (Assumption 2).
    inflight_at: Vec<SignalId>,
    /// Assume per PL-class: `iT` is done whenever `iP` occupies a PL of
    /// that class (Assumption 3).
    dead_at: Vec<SignalId>,
    /// Per-class "iP occupies some member now".
    class_now: Vec<SignalId>,
    /// Per-class "some member's µFSM is tainted while iP occupies it".
    class_tainted: Vec<SignalId>,
    class_table: PlTable,
}

/// Configuration for [`build_leak_harness`].
#[derive(Clone, Debug)]
pub struct LeakHarnessConfig {
    /// Transponder fetch slot.
    pub slot_p: usize,
    /// Transmitter fetch slot (equal to `slot_p` for the intrinsic case).
    pub slot_t: usize,
    /// Transponder opcodes to prepare assume bindings for.
    pub p_opcodes: Vec<Opcode>,
    /// Transmitter opcodes to prepare assume bindings for.
    pub t_opcodes: Vec<Opcode>,
    /// Restrict untracked context instructions to non-control-flow ones.
    pub no_cf_context: bool,
}

fn track(
    b: &mut Builder,
    design: &Design,
    slot: usize,
    prefix: &str,
    cnt: Wire,
    pls: &PlTable,
) -> Tracked {
    let fetch_fire = b.wire(design.fetch_fire);
    let pc = b.wire(design.pc);
    let issue_fire = b.wire(design.issue_fire);
    let ann = &design.annotations;

    let at_slot = b.eq_const(cnt, slot as u64);
    let fire = b.and(fetch_fire, at_slot);
    let fire = b.name(fire, &format!("{prefix}_fire"));
    let seen = b.reg(&format!("{prefix}_seen"), 1, 0);
    let seen_next = b.or(seen, fire);
    b.set_next(seen, seen_next).expect("fresh monitor reg");
    let ipc = b.reg(&format!("{prefix}_pc"), pc.width, 0);
    let ipc_next = b.mux(fire, pc, ipc);
    b.set_next(ipc, ipc_next).expect("fresh monitor reg");
    // No later fetch may reuse this PC.
    let refetch = {
        let same = b.eq(pc, ipc);
        let f = b.and(fetch_fire, seen);
        b.and(f, same)
    };
    let no_refetch = b.not(refetch);
    b.name(no_refetch, &format!("{prefix}_no_refetch"));

    let mut visit_now = Vec::new();
    let mut any_now = b.zero();
    let mut any_visited_w = b.zero();
    for ufsm in &ann.ufsms {
        let pcr = b.wire(ufsm.pcr);
        let pcr_match = b.eq(pcr, ipc);
        for st in ufsm.candidate_states(&design.netlist) {
            let mut state_match = b.one();
            for (vi, &var) in ufsm.vars.iter().enumerate() {
                let vw = b.wire(var);
                let m = b.eq_const(vw, st.state.0[vi]);
                state_match = b.and(state_match, m);
            }
            let occ = b.and(state_match, pcr_match);
            let vn = b.and(occ, seen);
            let vn = b.name(vn, &format!("{prefix}_vis_{}", st.name));
            visit_now.push(vn.id);
            any_now = b.or(any_now, vn);
            let sticky = sva::sticky(b, vn, &format!("{prefix}_visited_{}", st.name));
            any_visited_w = b.or(any_visited_w, sticky);
        }
    }
    debug_assert_eq!(visit_now.len(), pls.len());
    let inflight = b.name(any_now, &format!("{prefix}_inflight"));
    let done = {
        let quiet = b.not(any_now);
        let sv = b.and(seen, any_visited_w);
        let d = b.and(sv, quiet);
        b.name(d, &format!("{prefix}_done"))
    };
    let issue_pc = b.wire(design.issue_pc);
    let issue_valid = b.wire(design.issue_valid);
    // `seen` is a register; on request-driven DUVs (the cache) the issue
    // coincides with the fetch event itself, so the fire cycle must count
    // as "seen". On the cache, the tracked id equals the txid counter at
    // the fire cycle, making `same_pc` hold there.
    let seen_now = b.or(seen, fire);
    let same_pc = b.eq(issue_pc, ipc);
    let same_pc_now = {
        // At the fire cycle the id register has not latched yet; compare
        // against the live counter instead.
        let live = b.eq(issue_pc, pc);
        let when_firing = b.and(fire, live);
        let when_seen = b.and(seen, same_pc);
        b.or(when_firing, when_seen)
    };
    let issuing_this = {
        let s = b.and(issue_fire, same_pc_now);
        b.and(s, seen_now)
    };
    let issue_now = b.name(issuing_this, &format!("{prefix}_issue_now"));
    let staged = {
        let s = b.and(issue_valid, same_pc);
        b.and(s, seen)
    };
    let stage_now = b.name(staged, &format!("{prefix}_stage_now"));
    Tracked {
        seen: seen.id,
        visit_now,
        inflight: inflight.id,
        done: done.id,
        issue_now: issue_now.id,
        stage_now: stage_now.id,
    }
}

fn class_of(name: &str) -> String {
    name.trim_end_matches(|c: char| c.is_ascii_digit())
        .to_owned()
}

/// Builds the leak harness: IFT instrumentation + trackers + assume/cover
/// machinery.
///
/// # Panics
/// Panics on inconsistent annotations (a design bug).
pub fn build_leak_harness(design: &Design, cfg: &LeakHarnessConfig) -> LeakHarness {
    let ann = &design.annotations;
    assert!(
        ann.operand_regs.len() == 2,
        "leak harness expects two operand registers (rs1, rs2)"
    );
    // Taint-introduction point: designs that read an architectural
    // register file get taint *at the ARF registers while the transmitter
    // occupies the decode/issue stage* (so decode-time operand uses, such
    // as operand-packing eligibility, are covered); request-driven DUVs
    // (the cache) get taint at their operand/request registers at issue.
    let use_arf = design.rs_fields.is_some() && !ann.arf.is_empty();
    let sources = if use_arf {
        ann.arf.clone()
    } else {
        ann.operand_regs.clone()
    };
    let inst = instrument(
        &design.netlist,
        &IftOptions {
            sources,
            persistent: {
                let mut p = ann.amem.clone();
                p.extend(ann.persistent.iter().copied());
                p
            },
            blocked: {
                let mut v = ann.arf.clone();
                v.extend(ann.amem.iter().copied());
                v
            },
        },
    );
    let mut b = Builder::from_netlist(inst.netlist.clone());

    // PL table (shared by both trackers).
    let mut pls = PlTable::new();
    let mut classes = Vec::new();
    for ufsm in &ann.ufsms {
        for st in ufsm.candidate_states(&design.netlist) {
            pls.add(st.name.clone());
            classes.push(class_of(&st.name));
        }
    }

    // Shared fetch counter.
    let fetch_fire = b.wire(design.fetch_fire);
    let cnt = b.reg("fetch_count", 3, 0);
    let one3 = b.constant(1, 3);
    let cnt_max = b.eq_const(cnt, 7);
    let bumped = b.add(cnt, one3);
    let held = b.mux(cnt_max, cnt, bumped);
    let cnt_next = b.mux(fetch_fire, held, cnt);
    b.set_next(cnt, cnt_next).expect("fresh monitor reg");

    let intrinsic = cfg.slot_p == cfg.slot_t;
    let ip = track(&mut b, design, cfg.slot_p, "ip", cnt, &pls);
    let it = if intrinsic {
        ip.clone()
    } else {
        track(&mut b, design, cfg.slot_t, "it", cnt, &pls)
    };

    let mut base_assumes: Vec<SignalId> = Vec::new();
    base_assumes.push(b.wire_named("ip_no_refetch").id);
    if !intrinsic {
        base_assumes.push(b.wire_named("it_no_refetch").id);
    }
    if cfg.no_cf_context {
        let in_instr = b.wire(design.fetch_instr_input);
        let tf = design.type_field;
        let opfield = b.slice(in_instr, tf.hi, tf.lo);
        let is_cf = if design.type_values.is_empty() {
            let c23 = b.constant(Opcode::Beq.bits() as u64, opfield.width);
            b.ule(c23, opfield)
        } else {
            b.zero()
        };
        let ip_fire = b.wire_named("ip_fire");
        let tracked_fire = if intrinsic {
            ip_fire
        } else {
            let itf = b.wire_named("it_fire");
            b.or(ip_fire, itf)
        };
        let untracked = {
            let nt = b.not(tracked_fire);
            b.and(fetch_fire, nt)
        };
        let bad = b.and(untracked, is_cf);
        let ok = b.not(bad);
        let ok = b.name(ok, "assume_ctx_no_cf");
        base_assumes.push(ok.id);
    }

    // Opcode bindings (selected per query).
    let in_instr = b.wire(design.fetch_instr_input);
    let tf = design.type_field;
    let opfield = b.slice(in_instr, tf.hi, tf.lo);
    let mut opcode_assume_p = Vec::new();
    let ip_fire = b.wire_named("ip_fire");
    for &op in &cfg.p_opcodes {
        let m = b.eq_const(opfield, design.type_encoding(op));
        let nf = b.not(ip_fire);
        let ok = b.or(nf, m);
        let ok = b.name(ok, &format!("assume_p_is_{op}"));
        opcode_assume_p.push((op, ok.id));
    }
    let mut opcode_assume_t = Vec::new();
    if !intrinsic {
        let it_fire = b.wire_named("it_fire");
        for &op in &cfg.t_opcodes {
            let m = b.eq_const(opfield, design.type_encoding(op));
            let nf = b.not(it_fire);
            let ok = b.or(nf, m);
            let ok = b.name(ok, &format!("assume_t_is_{op}"));
            opcode_assume_t.push((op, ok.id));
        }
    }

    // Taint introduction binding.
    let bind = |b: &mut Builder, en: Wire, to: Wire| -> Wire {
        let x = b.xor(en, to);
        b.not(x)
    };
    let (taint_rs1, taint_rs2) = if use_arf {
        // ARF mode: while iT occupies the decode/issue stage, the register
        // named by its rs1 (resp. rs2) field is tainted; all other ARF
        // registers' enables are held low.
        let it_staged = b.wire(it.stage_now);
        let (rs1_f, rs2_f) = design.rs_fields.expect("arf mode");
        let rs1_field = b.wire(rs1_f);
        let rs2_field = b.wire(rs2_f);
        let mut per_operand = Vec::new();
        for field in [rs1_field, rs2_field] {
            let mut all_ok = b.one();
            for (ix, &reg) in ann.arf.iter().enumerate() {
                let en = b.wire(
                    inst.source_enable(reg)
                        .expect("arf register is a taint source"),
                );
                // Register indices start at 1 (r0 is hardwired zero).
                let reads = b.eq_const(field, (ix + 1) as u64);
                let want = b.and(it_staged, reads);
                let ok = bind(&mut b, en, want);
                all_ok = b.and(all_ok, ok);
            }
            per_operand.push(all_ok);
        }
        let rs1 = b.name(per_operand[0], "assume_taint_rs1");
        // For per-operand attribution, the rs2 query additionally requires
        // the two source fields to name distinct registers — otherwise an
        // encoding with rs1 == rs2 would let rs1-driven behaviour masquerade
        // as an rs2 leak (a per-operand aliasing false positive).
        let rs2 = {
            let distinct = {
                let same = b.eq(rs1_field, rs2_field);
                let diff = b.not(same);
                let ns = b.not(it_staged);
                b.or(ns, diff)
            };
            let both = b.and(per_operand[1], distinct);
            b.name(both, "assume_taint_rs2")
        };
        (rs1, rs2)
    } else {
        // Request-driven DUVs: taint the operand registers at issue.
        let it_issue = b.wire(it.issue_now);
        let en_a = b.wire(
            inst.source_enable(ann.operand_regs[0])
                .expect("rs1 operand register is a taint source"),
        );
        let en_b = b.wire(
            inst.source_enable(ann.operand_regs[1])
                .expect("rs2 operand register is a taint source"),
        );
        let zero1 = b.zero();
        let a_is_issue = bind(&mut b, en_a, it_issue);
        let b_is_zero = bind(&mut b, en_b, zero1);
        let b_is_issue = bind(&mut b, en_b, it_issue);
        let a_is_zero = bind(&mut b, en_a, zero1);
        let rs1 = {
            let both = b.and(a_is_issue, b_is_zero);
            b.name(both, "assume_taint_rs1")
        };
        let rs2 = {
            let both = b.and(b_is_issue, a_is_zero);
            b.name(both, "assume_taint_rs2")
        };
        (rs1, rs2)
    };

    // Flush binding.
    let flush = b.wire(inst.flush_input);
    let flush_zero = {
        let nz = b.not(flush);
        b.name(nz, "assume_flush_zero")
    };
    let it_done = b.wire(it.done);
    let demat = sva::rose(&mut b, it_done, "it_demat");
    let flush_at_demat = {
        let x = b.xor(flush, demat);
        let ok = b.not(x);
        b.name(ok, "assume_flush_at_demat")
    };

    // Class-level transponder occupancy + taint bits.
    let mut class_table = PlTable::new();
    let mut class_of_pl: Vec<PlId> = Vec::new();
    for pl in pls.ids() {
        let cname = &classes[pl.index()];
        let cid = class_table
            .find(cname)
            .unwrap_or_else(|| class_table.add(cname.clone()));
        class_of_pl.push(cid);
    }
    // Per-PL µFSM taint bit.
    let mut pl_fsm_taint: Vec<Wire> = Vec::new();
    for ufsm in &ann.ufsms {
        let mut t = b.zero();
        for &var in &ufsm.vars {
            let tv = b.wire(inst.taint_of(var));
            let any = b.red_or(tv);
            t = b.or(t, any);
        }
        let tp = b.wire(inst.taint_of(ufsm.pcr));
        let anyp = b.red_or(tp);
        t = b.or(t, anyp);
        for _ in ufsm.candidate_states(&design.netlist) {
            pl_fsm_taint.push(t);
        }
    }
    let mut class_now = Vec::new();
    let mut class_tainted = Vec::new();
    for cid in class_table.ids() {
        let mut now = b.zero();
        let mut tainted = b.zero();
        for pl in pls.ids() {
            if class_of_pl[pl.index()] == cid {
                let vn = b.wire(ip.visit_now[pl.index()]);
                now = b.or(now, vn);
                let ft = pl_fsm_taint[pl.index()];
                let both = b.and(vn, ft);
                tainted = b.or(tainted, both);
            }
        }
        let now = b.name(now, &format!("ip_class_now_{}", class_table.name(cid)));
        let tainted = b.name(
            tainted,
            &format!("ip_class_tainted_{}", class_table.name(cid)),
        );
        class_now.push(now.id);
        class_tainted.push(tainted.id);
    }

    // Assumption-2/3 constraints per class.
    let it_inflight = b.wire(it.inflight);
    let mut inflight_at = Vec::new();
    let mut dead_at = Vec::new();
    for cid in class_table.ids() {
        let pnow = b.wire(class_now[cid.index()]);
        let np = b.not(pnow);
        let ok_inflight = b.or(np, it_inflight);
        let ok_inflight = b.name(
            ok_inflight,
            &format!("assume_it_inflight_at_{}", class_table.name(cid)),
        );
        inflight_at.push(ok_inflight.id);
        let ok_dead = b.or(np, it_done);
        let ok_dead = b.name(
            ok_dead,
            &format!("assume_it_dead_at_{}", class_table.name(cid)),
        );
        dead_at.push(ok_dead.id);
    }

    let netlist = b.finish().expect("leak harness netlist is valid");
    LeakHarness {
        netlist,
        pls,
        classes,
        ip,
        it,
        base_assumes,
        flush_zero: flush_zero.id,
        flush_at_demat: flush_at_demat.id,
        taint_rs1: taint_rs1.id,
        taint_rs2: taint_rs2.id,
        inst,
        intrinsic,
        opcode_assume_p,
        opcode_assume_t,
        inflight_at,
        dead_at,
        class_now,
        class_tainted,
        class_table,
    }
}

impl LeakHarness {
    /// The class-level PL table.
    pub fn class_table(&self) -> &PlTable {
        &self.class_table
    }

    /// The opcode-binding assume for the transponder.
    ///
    /// # Panics
    /// Panics if the opcode was not listed in the harness config.
    pub fn p_opcode_assume(&self, op: Opcode) -> SignalId {
        self.opcode_assume_p
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| panic!("transponder opcode {op} not prepared"))
    }

    /// The opcode-binding assume for the transmitter (intrinsic harnesses
    /// use the transponder binding).
    ///
    /// # Panics
    /// Panics if the opcode was not listed in the harness config.
    pub fn t_opcode_assume(&self, op: Opcode) -> SignalId {
        if self.intrinsic {
            return self.p_opcode_assume(op);
        }
        self.opcode_assume_t
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| panic!("transmitter opcode {op} not prepared"))
    }

    /// The taint-operand binding assume.
    pub fn operand_assume(&self, op: Operand) -> SignalId {
        match op {
            Operand::Rs1 => self.taint_rs1,
            Operand::Rs2 => self.taint_rs2,
        }
    }

    /// The Assumption-2/3 relation assume for decisions at `src` (a class
    /// PL id).
    ///
    /// # Panics
    /// Panics if `kind` is intrinsic (no relation assume needed).
    pub fn relation_assume(&self, kind: TxKind, src: PlId) -> SignalId {
        match kind {
            TxKind::DynamicOlder | TxKind::DynamicYounger => self.inflight_at[src.index()],
            TxKind::Static => self.dead_at[src.index()],
            TxKind::Intrinsic => panic!("intrinsic queries need no relation assume"),
        }
    }

    /// The flush-policy assume for a kind.
    pub fn flush_assume(&self, kind: TxKind) -> SignalId {
        match kind {
            TxKind::Static => self.flush_at_demat,
            _ => self.flush_zero,
        }
    }

    /// Class-level "iP occupies some member of `c` now".
    pub fn class_now(&self, c: PlId) -> SignalId {
        self.class_now[c.index()]
    }

    /// Class-level "iP occupies a tainted member of `c` now".
    pub fn class_tainted(&self, c: PlId) -> SignalId {
        self.class_tainted[c.index()]
    }

    /// Every signal any query may pass as an *assume*: the cone-of-influence
    /// slice of a shared cover netlist must keep all of them, since assume
    /// activation reads their literals at every frame (see
    /// [`mc::CoiSlice`]).
    pub fn assume_signal_universe(&self) -> Vec<SignalId> {
        let mut sigs = self.base_assumes.clone();
        sigs.extend(self.opcode_assume_p.iter().map(|(_, s)| *s));
        sigs.extend(self.opcode_assume_t.iter().map(|(_, s)| *s));
        sigs.extend([
            self.taint_rs1,
            self.taint_rs2,
            self.flush_zero,
            self.flush_at_demat,
        ]);
        sigs.extend(self.inflight_at.iter().copied());
        sigs.extend(self.dead_at.iter().copied());
        sigs
    }

    /// Builds (into a fresh extension of this harness's netlist) the
    /// decision-taint covers for a set of class-level decisions of one
    /// transponder. Returns the extended netlist plus one cover signal per
    /// decision, in order (skipping none; the caller filters empty-dst
    /// decisions beforehand).
    pub fn decision_covers(&self, decisions: &[Decision]) -> (Netlist, Vec<SignalId>) {
        let (nl, mut covers) = self.decision_covers_multi(std::slice::from_ref(&decisions));
        (
            nl,
            covers
                .pop()
                .expect("one decision set in, one cover set out"),
        )
    }

    /// Like [`LeakHarness::decision_covers`], but merges the decision
    /// covers of *many* transponders into one extended netlist, returning
    /// one cover-signal vector per input set (in order). Every
    /// transponder's queries over this harness can then share one bit-blast
    /// and one pooled solver context instead of one netlist per
    /// (transponder, pairing) unit.
    pub fn decision_covers_multi(&self, works: &[&[Decision]]) -> (Netlist, Vec<Vec<SignalId>>) {
        let mut b = Builder::from_netlist(self.netlist.clone());
        let mut all_covers = Vec::new();
        for (wi, decisions) in works.iter().enumerate() {
            // All destination classes that appear across this source's
            // decisions, for the exact-set veto.
            let mut covers = Vec::new();
            for (ix, d) in decisions.iter().enumerate() {
                let src_now = b.wire(self.class_now[d.src.index()]);
                let mut sibling_classes: BTreeSet<PlId> = BTreeSet::new();
                for d2 in decisions.iter().filter(|d2| d2.src == d.src) {
                    sibling_classes.extend(d2.dst.iter().copied());
                }
                let dst_now: Vec<Wire> = d
                    .dst
                    .iter()
                    .map(|&c| b.wire(self.class_now[c.index()]))
                    .collect();
                let other_now: Vec<Wire> = sibling_classes
                    .iter()
                    .filter(|c| !d.dst.contains(c))
                    .map(|&c| b.wire(self.class_now[c.index()]))
                    .collect();
                let dst_tainted: Vec<Wire> = d
                    .dst
                    .iter()
                    .map(|&c| b.wire(self.class_tainted[c.index()]))
                    .collect();
                let all_dst = b.all(&dst_now);
                let any_other = b.any(&other_now);
                let no_other = b.not(any_other);
                let any_taint = b.any(&dst_tainted);
                let exact = b.and(all_dst, no_other);
                let payload = b.and(exact, any_taint);
                let cover = sva::seq_then(&mut b, src_now, payload, &format!("dtaint_{wi}_{ix}"));
                covers.push(cover.id);
            }
            all_covers.push(covers);
        }
        let nl = b.finish().expect("decision-cover netlist is valid");
        (nl, all_covers)
    }
}
