//! The hardware side-channel safety definition (Definition V.1) as an
//! executable experiment.
//!
//! `SC-Safe(M, R)` quantifies over programs, policies, and pairs of
//! low-equivalent initial architectural states: the receiver R must obtain
//! identical observation traces. Here the receiver is the paper's
//! `R_µPATH`: it observes, each cycle, which PLs are occupied by in-flight
//! instructions (not by whom, and not any data). This module runs a program
//! twice on the simulator from two initial states that differ only in
//! designated *secret* locations and compares the observation traces — the
//! empirical complement to the synthesis-side guarantees, used by tests to
//! confirm that synthesized leaks are real and hardened variants are tight.

use isa::Instr;
use sim::Simulator;
use uarch::Design;

/// Where a secret lives in the initial architectural state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SecretLocation {
    /// An architectural register (1..=3; r0 is hardwired).
    Reg(u8),
    /// A data-memory word.
    Mem(usize),
}

/// The result of one SC-Safe experiment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScSafeResult {
    /// `true` when the observation traces diverged (the program leaks on
    /// this microarchitecture under `R_µPATH`).
    pub violated: bool,
    /// First cycle at which the traces diverged.
    pub diverging_cycle: Option<usize>,
    /// Cycles each run needed to commit the program (observable timing).
    pub cycles: (usize, usize),
}

/// The per-cycle `R_µPATH` observation: for every µFSM state (PL), whether
/// it is occupied (by any instruction).
fn observe(design: &Design, s: &mut Simulator<'_>) -> Vec<bool> {
    let ann = &design.annotations;
    let mut obs = Vec::new();
    for ufsm in &ann.ufsms {
        for st in ufsm.candidate_states(&design.netlist) {
            let occupied = ufsm
                .vars
                .iter()
                .enumerate()
                .all(|(vi, &var)| s.value(var) == st.state.0[vi]);
            obs.push(occupied);
        }
    }
    obs
}

fn run_with_secret(
    design: &Design,
    program: &[Instr],
    secret_at: SecretLocation,
    secret: u64,
    commits_expected: usize,
    max_cycles: usize,
) -> (Vec<Vec<bool>>, usize) {
    let mut s = Simulator::new(&design.netlist);
    match secret_at {
        SecretLocation::Reg(r) => {
            assert!((1..=3).contains(&r), "secret register must be r1..r3");
            let id = design.annotations.arf[(r - 1) as usize];
            s.poke_reg(id, secret);
        }
        SecretLocation::Mem(w) => {
            let id = design.annotations.amem[w];
            s.poke_reg(id, secret);
        }
    }
    let commit = design.annotations.commit;
    let mut trace = Vec::new();
    let mut committed = 0;
    let mut cycles = 0;
    while committed < commits_expected && cycles < max_cycles {
        let pc = s.value(design.pc) as usize;
        let word = program.get(pc).copied().unwrap_or_else(Instr::nop).encode();
        s.set_input(design.fetch_instr_input, word as u64);
        s.set_input(design.fetch_valid_input, 1);
        if s.value(commit) == 1 {
            committed += 1;
        }
        trace.push(observe(design, &mut s));
        s.step();
        cycles += 1;
    }
    // Drain post-commit activity (store buffers) under observation.
    s.set_input(design.fetch_valid_input, 0);
    for _ in 0..8 {
        trace.push(observe(design, &mut s));
        s.step();
    }
    (trace, cycles)
}

/// Runs Definition V.1 for one program / secret location / pair of secret
/// values. The program must be `ArchCtrl`: its instruction sequence must
/// not branch on the secret (the caller's obligation; violating it makes
/// the result about architectural, not microarchitectural, leakage).
pub fn check_sc_safe(
    design: &Design,
    program: &[Instr],
    secret_at: SecretLocation,
    secret_a: u64,
    secret_b: u64,
    commits_expected: usize,
) -> ScSafeResult {
    let max_cycles = 64 + commits_expected * (design.max_latency + 4);
    let (ta, ca) = run_with_secret(
        design,
        program,
        secret_at,
        secret_a,
        commits_expected,
        max_cycles,
    );
    let (tb, cb) = run_with_secret(
        design,
        program,
        secret_at,
        secret_b,
        commits_expected,
        max_cycles,
    );
    let n = ta.len().max(tb.len());
    let mut diverging_cycle = None;
    for t in 0..n {
        match (ta.get(t), tb.get(t)) {
            (Some(a), Some(b)) if a == b => continue,
            _ => {
                diverging_cycle = Some(t);
                break;
            }
        }
    }
    ScSafeResult {
        violated: diverging_cycle.is_some(),
        diverging_cycle,
        cycles: (ca, cb),
    }
}
