//! SynthLC: synthesizing formally verified leakage signatures and leakage
//! contracts from RTL (the paper's third contribution, §IV and §V-C).
//!
//! The flow (Fig. 6, bottom half):
//!
//! 1. RTL2MµPATH (the `mupath` crate) finds every instruction's µPATHs;
//!    instructions with more than one are *candidate transponders*.
//! 2. The design is instrumented with cell-level IFT (the `ift` crate);
//!    for each candidate transponder decision, [`synthesize_leakage`] asks
//!    the model checker whether the decision can depend on a transmitter's
//!    operand under Assumptions 1/2a/2b/3 (Fig. 7) — intrinsic, dynamic
//!    older/younger, and static transmitter typings.
//! 3. Tagged decisions assemble into [`LeakageSignature`]s (§IV-D), from
//!    which the six leakage contracts of Table I derive
//!    ([`contracts::derive_contracts`]).
//!
//! The [`scsafe`] module provides the executable counterpart of
//! Definition V.1 (hardware side-channel safety) used to validate
//! synthesized leaks empirically.
//!
//! # Examples
//!
//! Classify channels on a report (here built by hand for brevity):
//!
//! ```
//! use synthlc::{LeakageSignature, TypedTransmitter, Operand, TxKind};
//! use std::collections::BTreeSet;
//!
//! let sig = LeakageSignature {
//!     transponder: isa::Opcode::Lw,
//!     src: "ldReq".into(),
//!     inputs: BTreeSet::from([TypedTransmitter {
//!         opcode: isa::Opcode::Sw,
//!         operand: Operand::Rs1,
//!         kind: TxKind::DynamicOlder,
//!     }]),
//!     outputs: vec![],
//!     has_primary: true,
//! };
//! assert!(synthlc::contracts::is_dynamic_channel(&sig));
//! assert!(!synthlc::contracts::is_static_channel(&sig));
//! ```

pub mod contracts;
mod harness;
pub mod journal;
pub mod scsafe;
mod signatures;

pub use harness::{build_leak_harness, LeakHarness, LeakHarnessConfig, Operand, Tracked, TxKind};
pub use journal::Journal;
pub use mupath::RobustOptions;
pub use signatures::{
    synthesize_leakage, LeakConfig, LeakageReport, LeakageSignature, Tag, TypedTransmitter,
};
