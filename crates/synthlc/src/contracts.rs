//! Deriving the six leakage contracts of Table I from µPATHs and leakage
//! signatures.
//!
//! Each derivation follows the ✓-columns of Table I: which signature
//! components (transponder `P`, decision source `src`, intrinsic `T^N` /
//! dynamic `T^D` / static `T^S` transmitters, arguments `a`) and which
//! µPATH information (`µ`) a contract consumes.

use crate::harness::{Operand, TxKind};
use crate::signatures::{LeakageReport, LeakageSignature};
use isa::Opcode;
use std::collections::{BTreeMap, BTreeSet};

/// A channel reference: transponder + decision source, the identity of one
/// leakage function.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct ChannelRef {
    /// The transponder.
    pub transponder: Opcode,
    /// The decision-source PL class.
    pub src: String,
}

impl std::fmt::Display for ChannelRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}_{}", self.transponder, self.src)
    }
}

fn channel(s: &LeakageSignature) -> ChannelRef {
    ChannelRef {
        transponder: s.transponder,
        src: s.src.clone(),
    }
}

fn has_kind(s: &LeakageSignature, kinds: &[TxKind]) -> bool {
    s.inputs.iter().any(|t| kinds.contains(&t.kind))
}

/// §II-B / §IV-C channel classification on a signature: *dynamic* iff
/// modulated by an intrinsic or dynamic transmitter; *static* iff modulated
/// by a static transmitter (a channel can be both).
pub fn is_dynamic_channel(s: &LeakageSignature) -> bool {
    has_kind(
        s,
        &[
            TxKind::Intrinsic,
            TxKind::DynamicOlder,
            TxKind::DynamicYounger,
        ],
    )
}

/// See [`is_dynamic_channel`].
pub fn is_static_channel(s: &LeakageSignature) -> bool {
    has_kind(s, &[TxKind::Static])
}

/// The canonical constant-time contract (§II-B): transmitters and their
/// unsafe operands.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CtContract {
    /// Transmitter opcode → unsafe operands.
    pub unsafe_operands: BTreeMap<Opcode, BTreeSet<Operand>>,
}

impl CtContract {
    /// Renders one line per transmitter.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (op, operands) in &self.unsafe_operands {
            let ops: Vec<String> = operands.iter().map(|o| o.to_string()).collect();
            out.push_str(&format!("{op}: unsafe({})\n", ops.join(", ")));
        }
        out
    }
}

/// MI6's contract: contention-based dynamic channels (for data-independent
/// scheduling) and static channels (for the purge instruction /
/// partitioning).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Mi6Contract {
    /// Channels modulated by intrinsic/dynamic transmitters.
    pub dynamic_channels: BTreeSet<ChannelRef>,
    /// Channels modulated by static transmitters.
    pub static_channels: BTreeSet<ChannelRef>,
}

/// OISA's contract: arithmetic units that a transmitter may occupy for an
/// operand-dependent number of cycles.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct OisaContract {
    /// (transmitter, unit PL class) pairs needing operand-independent-mode
    /// control logic.
    pub input_dependent_units: BTreeSet<(Opcode, String)>,
}

/// The STT/SDO/SPT shared fine-grained contract.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SttContract {
    /// Explicit channels: sources of µPATH variability for intrinsic
    /// transmitters (T^N ✓, a ✓).
    pub explicit_channels: BTreeSet<ChannelRef>,
    /// Implicit channels: sources of variability due to *other*
    /// (dynamic/static) transmitters' arguments.
    pub implicit_channels: BTreeSet<ChannelRef>,
    /// Implicit branches: transponders whose behaviour depends on other
    /// transmitters' operands.
    pub implicit_branches: BTreeSet<Opcode>,
    /// Prediction-based channels (static transmitters: persistent predictor
    /// state, Table I row `T^S ✓`).
    pub prediction_based: BTreeSet<ChannelRef>,
    /// Resolution-based channels (dynamic transmitters: in-flight
    /// resolution, Table I row `T^D ✓`).
    pub resolution_based: BTreeSet<ChannelRef>,
}

/// SDO's addition: per explicit-channel transmitter, the µPATH repertoire
/// from which data-oblivious variants are derived.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SdoContract {
    /// Transmitter → number of realizable µPATHs (the variant basis).
    pub variant_basis: BTreeMap<Opcode, usize>,
}

/// Dolma's contract components.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DolmaContract {
    /// Micro-ops with operand-dependent timing (intrinsic transmitters).
    pub variable_time_micro_ops: BTreeSet<Opcode>,
    /// Contention-based dynamic channels they create.
    pub contention_channels: BTreeSet<ChannelRef>,
    /// Inducive micro-ops: execute variably as a function of resolvent
    /// micro-ops' operands (the transponders of dynamic transmitters).
    pub inducive_micro_ops: BTreeSet<Opcode>,
    /// Resolvent micro-ops: the dynamic transmitters themselves.
    pub resolvent_micro_ops: BTreeSet<Opcode>,
    /// The decision source at which an inducive micro-op's variation
    /// resolves (prediction resolution points).
    pub resolution_points: BTreeSet<ChannelRef>,
    /// Persistent-state-modifying micro-ops (static transmitters).
    pub persistent_state_modifying: BTreeSet<Opcode>,
}

/// All six contracts of Table I.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Contracts {
    /// Constant-time (also consumed by SpecShield/ConTExt/SCT and SPT).
    pub ct: CtContract,
    /// MI6.
    pub mi6: Mi6Contract,
    /// OISA.
    pub oisa: OisaContract,
    /// STT (shared with SDO and SPT).
    pub stt: SttContract,
    /// SDO's data-oblivious variant basis.
    pub sdo: SdoContract,
    /// Dolma.
    pub dolma: DolmaContract,
}

/// Derives every contract from a leakage report.
pub fn derive_contracts(report: &LeakageReport) -> Contracts {
    let mut c = Contracts::default();
    for s in &report.signatures {
        let ch = channel(s);
        for t in &s.inputs {
            c.ct.unsafe_operands
                .entry(t.opcode)
                .or_default()
                .insert(t.operand);
            match t.kind {
                TxKind::Intrinsic => {
                    c.stt.explicit_channels.insert(ch.clone());
                    c.dolma.variable_time_micro_ops.insert(t.opcode);
                    if !["IF", "ID", "scbIss", "scbFin", "scbCmt"].contains(&s.src.as_str()) {
                        c.oisa
                            .input_dependent_units
                            .insert((t.opcode, s.src.clone()));
                    }
                }
                TxKind::DynamicOlder | TxKind::DynamicYounger => {
                    c.stt.implicit_channels.insert(ch.clone());
                    c.stt.implicit_branches.insert(s.transponder);
                    c.stt.resolution_based.insert(ch.clone());
                    c.dolma.inducive_micro_ops.insert(s.transponder);
                    c.dolma.resolvent_micro_ops.insert(t.opcode);
                    c.dolma.resolution_points.insert(ch.clone());
                    c.dolma.contention_channels.insert(ch.clone());
                }
                TxKind::Static => {
                    c.stt.implicit_channels.insert(ch.clone());
                    c.stt.implicit_branches.insert(s.transponder);
                    c.stt.prediction_based.insert(ch.clone());
                    c.dolma.persistent_state_modifying.insert(t.opcode);
                }
            }
        }
        if is_dynamic_channel(s) {
            c.mi6.dynamic_channels.insert(ch.clone());
        }
        if is_static_channel(s) {
            c.mi6.static_channels.insert(ch.clone());
        }
    }
    // SDO variant basis: µPATH counts for every explicit-channel
    // transmitter.
    let explicit_transmitters: BTreeSet<Opcode> = report
        .signatures
        .iter()
        .flat_map(|s| s.inputs.iter())
        .filter(|t| t.kind == TxKind::Intrinsic)
        .map(|t| t.opcode)
        .collect();
    for i in &report.mupath {
        if explicit_transmitters.contains(&i.opcode) {
            c.sdo.variant_basis.insert(i.opcode, i.paths.len());
        }
    }
    c
}

/// Renders the Table I mapping: which signature components were consumed by
/// each contract, with the counts this design produced.
pub fn render_table1(c: &Contracts) -> String {
    let mut out = String::new();
    out.push_str("Contract component                          | derived from        | count\n");
    out.push_str("--------------------------------------------+---------------------+------\n");
    out.push_str(&format!(
        "Constant-time contract (CT/SCT/SpecShield…) | T, a                | {}\n",
        c.ct.unsafe_operands.len()
    ));
    out.push_str(&format!(
        "MI6 contention-based dynamic channels       | P, src, T^N, T^D, a | {}\n",
        c.mi6.dynamic_channels.len()
    ));
    out.push_str(&format!(
        "MI6 static channels                         | P, src, T^S         | {}\n",
        c.mi6.static_channels.len()
    ));
    out.push_str(&format!(
        "OISA input-dependent arithmetic units       | T^N, a, src         | {}\n",
        c.oisa.input_dependent_units.len()
    ));
    out.push_str(&format!(
        "STT/SDO/SPT explicit channels               | src, T^N, a         | {}\n",
        c.stt.explicit_channels.len()
    ));
    out.push_str(&format!(
        "STT/SDO/SPT implicit channels               | src, T^D, T^S, a    | {}\n",
        c.stt.implicit_channels.len()
    ));
    out.push_str(&format!(
        "STT/SDO/SPT implicit branches               | P, T^D, T^S, a      | {}\n",
        c.stt.implicit_branches.len()
    ));
    out.push_str(&format!(
        "STT prediction-based channels               | src, T^S, a         | {}\n",
        c.stt.prediction_based.len()
    ));
    out.push_str(&format!(
        "STT resolution-based channels               | src, T^D, a         | {}\n",
        c.stt.resolution_based.len()
    ));
    out.push_str(&format!(
        "SDO data-oblivious variant basis            | µ, T^N, a           | {}\n",
        c.sdo.variant_basis.len()
    ));
    out.push_str(&format!(
        "Dolma variable-time micro-ops               | T^N, a              | {}\n",
        c.dolma.variable_time_micro_ops.len()
    ));
    out.push_str(&format!(
        "Dolma inducive micro-ops                    | P, T^D              | {}\n",
        c.dolma.inducive_micro_ops.len()
    ));
    out.push_str(&format!(
        "Dolma resolvent micro-ops                   | T^D                 | {}\n",
        c.dolma.resolvent_micro_ops.len()
    ));
    out.push_str(&format!(
        "Dolma prediction resolution points          | src, T^D            | {}\n",
        c.dolma.resolution_points.len()
    ));
    out.push_str(&format!(
        "Dolma persistent-state-modifying micro-ops  | T^S                 | {}\n",
        c.dolma.persistent_state_modifying.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signatures::LeakageReport;
    use mc::CheckStats;

    fn sig(p: Opcode, src: &str, inputs: &[(Opcode, Operand, TxKind)]) -> LeakageSignature {
        LeakageSignature {
            transponder: p,
            src: src.into(),
            inputs: inputs
                .iter()
                .map(|&(opcode, operand, kind)| crate::TypedTransmitter {
                    opcode,
                    operand,
                    kind,
                })
                .collect(),
            outputs: vec![],
            has_primary: true,
        }
    }

    fn report(signatures: Vec<LeakageSignature>) -> LeakageReport {
        let transmitters = signatures
            .iter()
            .flat_map(|s| s.inputs.iter().copied())
            .collect();
        let transponders = signatures.iter().map(|s| s.transponder).collect();
        LeakageReport {
            design: "test".into(),
            mupath: vec![],
            signatures,
            candidate_transponders: vec![],
            transponders,
            transmitters,
            mupath_stats: CheckStats::default(),
            ift_stats: CheckStats::default(),
            degraded_jobs: 0,
            resumed_jobs: 0,
            retried_jobs: 0,
        }
    }

    #[test]
    fn intrinsic_signature_maps_to_explicit_channel_and_ct() {
        let r = report(vec![sig(
            Opcode::Div,
            "divU",
            &[(Opcode::Div, Operand::Rs1, TxKind::Intrinsic)],
        )]);
        let c = derive_contracts(&r);
        assert!(c.ct.unsafe_operands[&Opcode::Div].contains(&Operand::Rs1));
        assert_eq!(c.stt.explicit_channels.len(), 1);
        assert!(c.stt.implicit_channels.is_empty());
        assert!(c.dolma.variable_time_micro_ops.contains(&Opcode::Div));
        assert!(c
            .oisa
            .input_dependent_units
            .contains(&(Opcode::Div, "divU".into())));
        assert!(c.mi6.dynamic_channels.len() == 1);
        assert!(c.mi6.static_channels.is_empty());
    }

    #[test]
    fn dynamic_signature_maps_to_implicit_channel_and_dolma_pairs() {
        let r = report(vec![sig(
            Opcode::Lw,
            "ldReq",
            &[(Opcode::Sw, Operand::Rs1, TxKind::DynamicOlder)],
        )]);
        let c = derive_contracts(&r);
        assert!(c.stt.implicit_channels.len() == 1);
        assert!(c.stt.implicit_branches.contains(&Opcode::Lw));
        assert!(c.stt.resolution_based.len() == 1, "dynamic => resolution");
        assert!(c.stt.prediction_based.is_empty());
        assert!(c.dolma.inducive_micro_ops.contains(&Opcode::Lw));
        assert!(c.dolma.resolvent_micro_ops.contains(&Opcode::Sw));
        assert!(c.oisa.input_dependent_units.is_empty(), "not intrinsic");
    }

    #[test]
    fn static_signature_maps_to_prediction_and_persistence() {
        let r = report(vec![sig(
            Opcode::Lw,
            "lkup",
            &[(Opcode::Lw, Operand::Rs1, TxKind::Static)],
        )]);
        let c = derive_contracts(&r);
        assert!(c.stt.prediction_based.len() == 1, "static => prediction");
        assert!(c.dolma.persistent_state_modifying.contains(&Opcode::Lw));
        assert!(c.mi6.static_channels.len() == 1);
        assert!(c.mi6.dynamic_channels.is_empty());
    }

    #[test]
    fn channel_classification_can_be_both() {
        let s = sig(
            Opcode::Lw,
            "lkup",
            &[
                (Opcode::Lw, Operand::Rs1, TxKind::Intrinsic),
                (Opcode::Lw, Operand::Rs1, TxKind::Static),
            ],
        );
        assert!(is_dynamic_channel(&s) && is_static_channel(&s));
    }

    #[test]
    fn table1_render_counts_match() {
        let r = report(vec![
            sig(
                Opcode::Div,
                "divU",
                &[(Opcode::Div, Operand::Rs1, TxKind::Intrinsic)],
            ),
            sig(
                Opcode::Lw,
                "ldReq",
                &[(Opcode::Sw, Operand::Rs1, TxKind::DynamicOlder)],
            ),
        ]);
        let c = derive_contracts(&r);
        let table = render_table1(&c);
        assert!(table.contains("Constant-time contract"));
        assert!(table.lines().count() >= 16, "all sixteen rows rendered");
    }
}
