//! The crash-safe checkpoint journal (DESIGN.md §8): an append-only file
//! of completed job verdicts, one compact JSON record per line, fsync'd
//! per record so a kill at any instant loses at most the record being
//! written — and that torn tail is detected and dropped on resume, never
//! treated as fatal.
//!
//! Records are keyed by stable job fingerprints (design hash + job kind +
//! indices + the config knobs that can change the verdict), so a journal
//! can only replay onto the run that wrote it. The drivers journal only
//! *clean* verdicts — degraded jobs rerun on resume — which is what makes
//! a resumed run's report byte-identical to an uninterrupted one.

use mc::JobStore;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

/// An append-only, fsync'd, torn-tail-tolerant store of job verdicts.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    file: File,
    seen: HashMap<String, String>,
    hits: u64,
}

impl Journal {
    /// Creates (or truncates) a fresh journal at `path` — the `--journal`
    /// mode of a first run.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Journal {
            inner: Mutex::new(Inner {
                file,
                seen: HashMap::new(),
                hits: 0,
            }),
        })
    }

    /// Opens an existing journal and replays its completed records — the
    /// `--resume` mode. The file is scanned front to back; at the first
    /// malformed or truncated record (a torn write from a kill mid-append)
    /// the file is truncated to the last good record and the rest is
    /// dropped: those jobs simply rerun. New verdicts append to the same
    /// file, so a resumed run leaves a journal that is again resumable.
    pub fn resume(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let mut seen = HashMap::new();
        let mut good = 0usize;
        for line in text.split_inclusive('\n') {
            let Some(record) = parse_record(line) else {
                break;
            };
            seen.insert(record.0, record.1);
            good += line.len();
        }
        if good < text.len() {
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Journal {
            inner: Mutex::new(Inner {
                file,
                seen,
                hits: 0,
            }),
        })
    }

    /// Completed records currently held (replayed plus appended).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .seen
            .len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many `get` calls found a record — the run's replayed-job count.
    pub fn hits(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).hits
    }
}

/// One journal line: `{"k": <key>, "r": <record>}` with the record kept as
/// an escaped string so `get` round-trips it untouched.
fn parse_record(line: &str) -> Option<(String, String)> {
    let line = line.strip_suffix('\n')?;
    let j = jsonio::Json::parse(line).ok()?;
    Some((
        j.field("k")?.as_str()?.to_owned(),
        j.field("r")?.as_str()?.to_owned(),
    ))
}

impl JobStore for Journal {
    fn get(&self, key: &str) -> Option<String> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let found = inner.seen.get(key).cloned();
        if found.is_some() {
            inner.hits += 1;
        }
        found
    }

    fn put(&self, key: &str, record: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.seen.contains_key(key) {
            return;
        }
        let line = jsonio::Json::Obj(vec![
            ("k".into(), jsonio::Json::str(key)),
            ("r".into(), jsonio::Json::str(record)),
        ])
        .render_compact();
        // Append + flush + fsync before admitting the record to the map:
        // a verdict is only "completed" once it would survive a crash.
        let ok = writeln!(inner.file, "{line}")
            .and_then(|()| inner.file.flush())
            .and_then(|()| inner.file.sync_data())
            .is_ok();
        if ok {
            inner.seen.insert(key.to_owned(), record.to_owned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("synthlc-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn put_get_round_trip() {
        let path = tmp("roundtrip");
        let j = Journal::create(&path).unwrap();
        assert!(j.is_empty());
        j.put("k1", "{\"v\":1}");
        j.put("k2", "plain text with \"quotes\" and\nnewlines");
        assert_eq!(j.get("k1").as_deref(), Some("{\"v\":1}"));
        assert_eq!(
            j.get("k2").as_deref(),
            Some("plain text with \"quotes\" and\nnewlines")
        );
        assert_eq!(j.get("missing"), None);
        assert_eq!(j.hits(), 2);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn resume_replays_and_appends() {
        let path = tmp("resume");
        {
            let j = Journal::create(&path).unwrap();
            j.put("a", "1");
            j.put("b", "2");
        }
        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.get("a").as_deref(), Some("1"));
        j.put("c", "3");
        drop(j);
        let j2 = Journal::resume(&path).unwrap();
        assert_eq!(j2.len(), 3);
        assert_eq!(j2.get("c").as_deref(), Some("3"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn duplicate_put_keeps_first_record() {
        let path = tmp("dup");
        let j = Journal::create(&path).unwrap();
        j.put("k", "first");
        j.put("k", "second");
        assert_eq!(j.get("k").as_deref(), Some("first"));
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        {
            let j = Journal::create(&path).unwrap();
            j.put("a", "1");
            j.put("b", "2");
        }
        // Simulate a kill mid-append: chop bytes off the final record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.len(), 1, "torn record must be dropped");
        assert_eq!(j.get("a").as_deref(), Some("1"));
        assert_eq!(j.get("b"), None);
        // The torn bytes are gone from disk; the journal appends cleanly.
        j.put("b", "2-again");
        drop(j);
        let j2 = Journal::resume(&path).unwrap();
        assert_eq!(j2.len(), 2);
        assert_eq!(j2.get("b").as_deref(), Some("2-again"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_trailing_newline_counts_as_torn() {
        let path = tmp("nonl");
        {
            let j = Journal::create(&path).unwrap();
            j.put("a", "1");
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"k\":\"b\",\"r\":\"2\"}"); // no '\n'
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.len(), 1);
        std::fs::remove_file(path).unwrap();
    }
}
