//! The crash-safe checkpoint journal (DESIGN.md §8): an append-only file
//! of completed job verdicts, one compact JSON record per line, fsync'd
//! per record so a kill at any instant loses at most the record being
//! written — and that torn tail is detected and dropped on resume, never
//! treated as fatal. Every line carries an FNV checksum of its key and
//! record, so even a tear that splices two appends into one
//! still-parseable line (out-of-order block persistence) is detected and
//! dropped together with everything after it.
//!
//! Records are keyed by stable job fingerprints (design hash + job kind +
//! indices + the config knobs that can change the verdict), so a journal
//! can only replay onto the run that wrote it. The drivers journal only
//! *clean* verdicts — degraded jobs rerun on resume — which is what makes
//! a resumed run's report byte-identical to an uninterrupted one.

use mc::JobStore;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

/// An append-only, fsync'd, torn-tail-tolerant store of job verdicts.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    file: File,
    seen: HashMap<String, String>,
    hits: u64,
}

impl Journal {
    /// Creates (or truncates) a fresh journal at `path` — the `--journal`
    /// mode of a first run.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Journal {
            inner: Mutex::new(Inner {
                file,
                seen: HashMap::new(),
                hits: 0,
            }),
        })
    }

    /// Opens an existing journal and replays its completed records — the
    /// `--resume` mode. The file is scanned front to back; at the first
    /// malformed or truncated record (a torn write from a kill mid-append)
    /// the file is truncated to the last good record and the rest is
    /// dropped: those jobs simply rerun. New verdicts append to the same
    /// file, so a resumed run leaves a journal that is again resumable.
    pub fn resume(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let mut seen = HashMap::new();
        let mut good = 0usize;
        for line in text.split_inclusive('\n') {
            let Some(record) = parse_record(line) else {
                break;
            };
            seen.insert(record.0, record.1);
            good += line.len();
        }
        if good < text.len() {
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Journal {
            inner: Mutex::new(Inner {
                file,
                seen,
                hits: 0,
            }),
        })
    }

    /// Completed records currently held (replayed plus appended).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .seen
            .len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many `get` calls found a record — the run's replayed-job count.
    pub fn hits(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).hits
    }

    /// Appends raw bytes at the journal's write position without admitting
    /// any record — the chaos-injection hook behind the serve daemon's
    /// torn-write fault. The bytes model a kill mid-append; the next
    /// [`Journal::resume`] must treat them as a torn tail and drop them
    /// together with everything written after.
    pub fn append_raw(&self, bytes: &[u8]) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let _ = inner
            .file
            .write_all(bytes)
            .and_then(|()| inner.file.sync_data());
    }
}

/// One journal line: `{"k": <key>, "r": <record>, "c": <checksum>}` with
/// the record kept as an escaped string so `get` round-trips it untouched.
/// The checksum covers key and record: a crash that tears writes *across*
/// two appends (out-of-order block persistence splicing the prefix of one
/// record onto the suffix of another) can leave a line that still parses
/// as JSON — only the checksum unmasks it as torn.
fn parse_record(line: &str) -> Option<(String, String)> {
    let line = line.strip_suffix('\n')?;
    let j = jsonio::Json::parse(line).ok()?;
    let key = j.field("k")?.as_str()?.to_owned();
    let record = j.field("r")?.as_str()?.to_owned();
    if j.field("c")?.as_u64()? != record_checksum(&key, &record) {
        return None;
    }
    Some((key, record))
}

/// FNV-1a over `key NUL record` — the integrity tag appended to every
/// journal line.
fn record_checksum(key: &str, record: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key.as_bytes().iter().chain(&[0u8]).chain(record.as_bytes()) {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl JobStore for Journal {
    fn get(&self, key: &str) -> Option<String> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let found = inner.seen.get(key).cloned();
        if found.is_some() {
            inner.hits += 1;
        }
        found
    }

    fn put(&self, key: &str, record: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.seen.contains_key(key) {
            return;
        }
        let line = jsonio::Json::Obj(vec![
            ("k".into(), jsonio::Json::str(key)),
            ("r".into(), jsonio::Json::str(record)),
            ("c".into(), jsonio::Json::Int(record_checksum(key, record))),
        ])
        .render_compact();
        // Append + flush + fsync before admitting the record to the map:
        // a verdict is only "completed" once it would survive a crash.
        let ok = writeln!(inner.file, "{line}")
            .and_then(|()| inner.file.flush())
            .and_then(|()| inner.file.sync_data())
            .is_ok();
        if ok {
            inner.seen.insert(key.to_owned(), record.to_owned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("synthlc-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn put_get_round_trip() {
        let path = tmp("roundtrip");
        let j = Journal::create(&path).unwrap();
        assert!(j.is_empty());
        j.put("k1", "{\"v\":1}");
        j.put("k2", "plain text with \"quotes\" and\nnewlines");
        assert_eq!(j.get("k1").as_deref(), Some("{\"v\":1}"));
        assert_eq!(
            j.get("k2").as_deref(),
            Some("plain text with \"quotes\" and\nnewlines")
        );
        assert_eq!(j.get("missing"), None);
        assert_eq!(j.hits(), 2);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn resume_replays_and_appends() {
        let path = tmp("resume");
        {
            let j = Journal::create(&path).unwrap();
            j.put("a", "1");
            j.put("b", "2");
        }
        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.get("a").as_deref(), Some("1"));
        j.put("c", "3");
        drop(j);
        let j2 = Journal::resume(&path).unwrap();
        assert_eq!(j2.len(), 3);
        assert_eq!(j2.get("c").as_deref(), Some("3"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn duplicate_put_keeps_first_record() {
        let path = tmp("dup");
        let j = Journal::create(&path).unwrap();
        j.put("k", "first");
        j.put("k", "second");
        assert_eq!(j.get("k").as_deref(), Some("first"));
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        {
            let j = Journal::create(&path).unwrap();
            j.put("a", "1");
            j.put("b", "2");
        }
        // Simulate a kill mid-append: chop bytes off the final record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.len(), 1, "torn record must be dropped");
        assert_eq!(j.get("a").as_deref(), Some("1"));
        assert_eq!(j.get("b"), None);
        // The torn bytes are gone from disk; the journal appends cleanly.
        j.put("b", "2-again");
        drop(j);
        let j2 = Journal::resume(&path).unwrap();
        assert_eq!(j2.len(), 2);
        assert_eq!(j2.get("b").as_deref(), Some("2-again"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn splice_torn_across_two_appends_drops_exactly_the_torn_suffix() {
        // A kill mid-fsync can persist appends out of order: the tail of a
        // later record lands while the head of an earlier one doesn't,
        // splicing the prefix of record `b` onto the suffix of record `c`.
        // The spliced line still *parses* as JSON — only the checksum
        // reveals the tear. Recovery must keep `a`, and drop exactly the
        // torn suffix: the splice AND everything after it (`d`), even
        // though `d` itself is intact.
        let path = tmp("splice");
        {
            let j = Journal::create(&path).unwrap();
            j.put("a", "alpha");
            j.put("b", "bravo-long-record-payload");
            j.put("c", "charlie");
            j.put("d", "delta");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Splice: b's bytes up to mid-payload + c's bytes from the same
        // distance-to-end, picked so the result is valid JSON with b's key
        // and a hybrid record/checksum.
        let b_line = lines[1];
        let c_line = lines[2];
        let cut = b_line.find("bravo").unwrap() + 3;
        let tail_len = c_line.len() - c_line.find("charlie").unwrap();
        let spliced = format!("{}{}", &b_line[..cut], &c_line[c_line.len() - tail_len..]);
        jsonio::Json::parse(&spliced).expect("the spliced line must parse — that's the trap");
        let torn = format!("{}\n{}\n{}\n", lines[0], spliced, lines[3]);
        std::fs::write(&path, torn).unwrap();

        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.len(), 1, "only the record before the tear survives");
        assert_eq!(j.get("a").as_deref(), Some("alpha"));
        assert_eq!(j.get("b"), None, "the spliced record must not replay");
        assert_eq!(j.get("d"), None, "records after the tear are dropped too");
        // The file was truncated to the good prefix and appends cleanly.
        j.put("b", "bravo-again");
        drop(j);
        let j2 = Journal::resume(&path).unwrap();
        assert_eq!(j2.len(), 2);
        assert_eq!(j2.get("b").as_deref(), Some("bravo-again"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn corrupted_checksum_counts_as_torn() {
        let path = tmp("cksum");
        {
            let j = Journal::create(&path).unwrap();
            j.put("a", "1");
            j.put("b", "2");
        }
        // Flip one digit of b's record without breaking the JSON shape.
        let text = std::fs::read_to_string(&path).unwrap();
        let flipped = text.replacen("\"r\":\"2\"", "\"r\":\"3\"", 1);
        assert_ne!(text, flipped);
        std::fs::write(&path, flipped).unwrap();
        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.len(), 1, "a record failing its checksum must be dropped");
        assert_eq!(j.get("b"), None);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_trailing_newline_counts_as_torn() {
        let path = tmp("nonl");
        {
            let j = Journal::create(&path).unwrap();
            j.put("a", "1");
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"k\":\"b\",\"r\":\"2\"}"); // no '\n'
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::resume(&path).unwrap();
        assert_eq!(j.len(), 1);
        std::fs::remove_file(path).unwrap();
    }
}
