//! Cycle-accurate two-state simulator for the `netlist` IR.
//!
//! Used three ways in the reproduction:
//!
//! * ISA conformance testing of the `uarch` processor designs against the
//!   `isa` golden model,
//! * replaying model-checker witness traces (every `Reachable` outcome in the
//!   test suite is validated by re-simulating the witness),
//! * the SC-Safe (Definition V.1) experiment in `synthlc`, which compares
//!   observation traces of low-equivalent executions.
//!
//! # Examples
//!
//! ```
//! use netlist::Builder;
//! use sim::Simulator;
//!
//! # fn main() -> Result<(), netlist::NetlistError> {
//! let mut b = Builder::new();
//! let x = b.input("x", 8);
//! let acc = b.reg("acc", 8, 0);
//! let sum = b.add(acc, x);
//! b.set_next(acc, sum)?;
//! let nl = b.finish()?;
//!
//! let mut simulator = Simulator::new(&nl);
//! let x = nl.find("x").unwrap();
//! let acc = nl.find("acc").unwrap();
//! simulator.set_input(x, 5);
//! simulator.step();
//! simulator.set_input(x, 7);
//! simulator.step();
//! assert_eq!(simulator.value(acc), 12);
//! # Ok(())
//! # }
//! ```

use netlist::analysis::topo_order;
use netlist::{mask, Netlist, Op, SignalId};
use std::collections::HashMap;

/// A cycle-accurate interpreter over a [`Netlist`].
///
/// Protocol per cycle: call [`Simulator::set_input`] for each input, read
/// combinational values with [`Simulator::value`] (evaluation is implicit),
/// then [`Simulator::step`] to advance the clock.
#[derive(Debug)]
pub struct Simulator<'a> {
    nl: &'a Netlist,
    order: Vec<SignalId>,
    values: Vec<u64>,
    dirty: bool,
    cycle: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator in the reset state (registers at their init
    /// values, inputs at 0).
    ///
    /// # Panics
    /// Panics if the netlist is invalid (validate it first).
    pub fn new(nl: &'a Netlist) -> Self {
        nl.validate().expect("simulating an invalid netlist");
        let order = topo_order(nl).expect("validated netlist is acyclic");
        let mut s = Self {
            nl,
            order,
            values: vec![0; nl.len()],
            dirty: true,
            cycle: 0,
        };
        for r in nl.regs() {
            s.values[r.index()] = nl.reg_init(r);
        }
        s
    }

    /// Current cycle number (0 at reset).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Drives a primary input for the current cycle.
    ///
    /// # Panics
    /// Panics if `id` is not an input or the value does not fit its width.
    pub fn set_input(&mut self, id: SignalId, value: u64) {
        assert!(
            self.nl.node(id).op.is_input(),
            "{} is not an input",
            self.nl.display_name(id)
        );
        let w = self.nl.width(id);
        assert_eq!(value & !mask(w), 0, "input value wider than {w} bits");
        self.values[id.index()] = value;
        self.dirty = true;
    }

    /// Drives several inputs at once.
    pub fn set_inputs<I: IntoIterator<Item = (SignalId, u64)>>(&mut self, inputs: I) {
        for (id, v) in inputs {
            self.set_input(id, v);
        }
    }

    fn eval(&mut self) {
        if !self.dirty {
            return;
        }
        for &id in &self.order {
            let node = self.nl.node(id);
            let v = match &node.op {
                Op::Input | Op::Reg { .. } => continue,
                Op::Const(c) => *c,
                Op::Unary(op, a) => op.eval(self.values[a.index()], self.nl.width(*a)),
                Op::Binary(op, a, b) => op.eval(
                    self.values[a.index()],
                    self.values[b.index()],
                    self.nl.width(*a),
                ),
                Op::Mux { sel, a, b } => {
                    if self.values[sel.index()] != 0 {
                        self.values[a.index()]
                    } else {
                        self.values[b.index()]
                    }
                }
                Op::Slice { src, hi, lo } => (self.values[src.index()] >> lo) & mask(hi - lo + 1),
                Op::Concat { hi, lo } => {
                    let lw = self.nl.width(*lo);
                    (self.values[hi.index()] << lw) | self.values[lo.index()]
                }
            };
            self.values[id.index()] = v;
        }
        self.dirty = false;
    }

    /// Reads the current (combinationally settled) value of a signal.
    pub fn value(&mut self, id: SignalId) -> u64 {
        self.eval();
        self.values[id.index()]
    }

    /// Reads a signal by name.
    ///
    /// # Panics
    /// Panics if no signal has that name.
    pub fn value_of(&mut self, name: &str) -> u64 {
        let id = self
            .nl
            .find(name)
            .unwrap_or_else(|| panic!("no signal named `{name}`"));
        self.value(id)
    }

    /// Overwrites a register's current value (verification/experiment
    /// support: e.g. installing a secret into the architectural state for
    /// the SC-Safe experiment, Definition V.1).
    ///
    /// # Panics
    /// Panics if `id` is not a register or the value does not fit.
    pub fn poke_reg(&mut self, id: SignalId, value: u64) {
        assert!(
            self.nl.node(id).op.is_reg(),
            "{} is not a register",
            self.nl.display_name(id)
        );
        let w = self.nl.width(id);
        assert_eq!(value & !mask(w), 0, "poke value wider than {w} bits");
        self.values[id.index()] = value;
        self.dirty = true;
    }

    /// Advances the clock one cycle: registers latch their next values.
    pub fn step(&mut self) {
        self.eval();
        let regs = self.nl.regs();
        let latched: Vec<(SignalId, u64)> = regs
            .iter()
            .map(|&r| (r, self.values[self.nl.reg_next(r).index()]))
            .collect();
        for (r, v) in latched {
            self.values[r.index()] = v;
        }
        self.cycle += 1;
        self.dirty = true;
    }

    /// Runs one full cycle with the given input assignment, returning after
    /// the clock edge.
    pub fn run_cycle(&mut self, inputs: &HashMap<SignalId, u64>) {
        for (&id, &v) in inputs {
            self.set_input(id, v);
        }
        self.step();
    }
}

/// A recorded multi-cycle waveform of selected signals.
///
/// # Examples
///
/// ```
/// use netlist::Builder;
/// use sim::{Recorder, Simulator};
///
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut b = Builder::new();
/// let c = b.reg("c", 4, 0);
/// let one = b.constant(1, 4);
/// let n = b.add(c, one);
/// b.set_next(c, n)?;
/// let nl = b.finish()?;
/// let c = nl.find("c").unwrap();
///
/// let mut simulator = Simulator::new(&nl);
/// let mut rec = Recorder::new(vec![c]);
/// for _ in 0..3 {
///     rec.sample(&mut simulator);
///     simulator.step();
/// }
/// assert_eq!(rec.column(c), vec![0, 1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    signals: Vec<SignalId>,
    rows: Vec<Vec<u64>>,
}

impl Recorder {
    /// Creates a recorder watching the given signals.
    pub fn new(signals: Vec<SignalId>) -> Self {
        Self {
            signals,
            rows: Vec::new(),
        }
    }

    /// Samples the watched signals at the current cycle.
    pub fn sample(&mut self, simulator: &mut Simulator<'_>) {
        let row = self.signals.iter().map(|&s| simulator.value(s)).collect();
        self.rows.push(row);
    }

    /// Number of sampled cycles.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The per-cycle values of one watched signal.
    ///
    /// # Panics
    /// Panics if the signal is not watched.
    pub fn column(&self, sig: SignalId) -> Vec<u64> {
        let ix = self
            .signals
            .iter()
            .position(|&s| s == sig)
            .expect("signal not watched");
        self.rows.iter().map(|r| r[ix]).collect()
    }

    /// The sampled rows, one per cycle, in watch order.
    pub fn rows(&self) -> &[Vec<u64>] {
        &self.rows
    }

    /// Renders an ASCII waveform table using the netlist's signal names.
    pub fn render(&self, nl: &Netlist) -> String {
        let mut out = String::new();
        out.push_str("cycle");
        for &s in &self.signals {
            out.push_str(&format!("\t{}", nl.display_name(s)));
        }
        out.push('\n');
        for (cyc, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("{cyc}"));
            for v in row {
                out.push_str(&format!("\t{v}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Replays a per-cycle input script and returns the values of `watch`
/// signals at every cycle *before* each clock edge.
///
/// This is the hook used to validate model-checker witnesses: the `mc` crate
/// produces exactly this input-script shape.
pub fn replay(
    nl: &Netlist,
    script: &[HashMap<SignalId, u64>],
    watch: &[SignalId],
) -> Vec<Vec<u64>> {
    let mut simulator = Simulator::new(nl);
    let mut out = Vec::with_capacity(script.len());
    for inputs in script {
        for (&id, &v) in inputs {
            simulator.set_input(id, v);
        }
        out.push(watch.iter().map(|&s| simulator.value(s)).collect());
        simulator.step();
    }
    out
}

/// Writes a recorded waveform as a minimal VCD (Value Change Dump) file
/// body, viewable in standard waveform viewers.
///
/// # Examples
///
/// ```
/// use netlist::Builder;
/// use sim::{Recorder, Simulator};
///
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut b = Builder::new();
/// let c = b.reg("c", 4, 0);
/// let one = b.constant(1, 4);
/// let n = b.add(c, one);
/// b.set_next(c, n)?;
/// let nl = b.finish()?;
/// let c = nl.find("c").unwrap();
/// let mut s = Simulator::new(&nl);
/// let mut rec = Recorder::new(vec![c]);
/// rec.sample(&mut s);
/// s.step();
/// rec.sample(&mut s);
/// let vcd = sim::to_vcd(&rec, &nl, &[c]);
/// assert!(vcd.contains("$var"));
/// # Ok(())
/// # }
/// ```
pub fn to_vcd(rec: &Recorder, nl: &Netlist, signals: &[SignalId]) -> String {
    let mut out = String::new();
    out.push_str("$timescale 1ns $end\n$scope module dut $end\n");
    let idcode = |i: usize| -> String {
        // VCD identifier characters: printable ASCII 33..=126.
        let mut n = i;
        let mut s = String::new();
        loop {
            s.push((33 + (n % 94)) as u8 as char);
            n /= 94;
            if n == 0 {
                break;
            }
        }
        s
    };
    for (i, &sig) in signals.iter().enumerate() {
        out.push_str(&format!(
            "$var wire {} {} {} $end\n",
            nl.width(sig),
            idcode(i),
            nl.display_name(sig)
        ));
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");
    let mut last: Vec<Option<u64>> = vec![None; signals.len()];
    for (t, _) in rec.rows().iter().enumerate() {
        out.push_str(&format!("#{t}\n"));
        for (i, &sig) in signals.iter().enumerate() {
            let v = rec.column(sig)[t];
            if last[i] != Some(v) {
                last[i] = Some(v);
                if nl.width(sig) == 1 {
                    out.push_str(&format!("{}{}\n", v & 1, idcode(i)));
                } else {
                    out.push_str(&format!("b{:b} {}\n", v, idcode(i)));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::Builder;

    #[test]
    fn register_latches_on_step_not_eval() {
        let mut b = Builder::new();
        let x = b.input("x", 8);
        let r = b.reg("r", 8, 0);
        b.set_next(r, x).unwrap();
        let nl = b.finish().unwrap();
        let (x, r) = (nl.find("x").unwrap(), nl.find("r").unwrap());
        let mut s = Simulator::new(&nl);
        s.set_input(x, 42);
        assert_eq!(s.value(r), 0, "reg holds init before edge");
        s.step();
        assert_eq!(s.value(r), 42, "reg latched at edge");
    }

    #[test]
    fn mux_and_slices() {
        let mut b = Builder::new();
        let x = b.input("x", 8);
        let sel = b.input("sel", 1);
        let hi = b.slice(x, 7, 4);
        let lo = b.slice(x, 3, 0);
        let m = b.mux(sel, hi, lo);
        let out = b.name(m, "out");
        let _ = out;
        let nl = b.finish().unwrap();
        let mut s = Simulator::new(&nl);
        s.set_input(nl.find("x").unwrap(), 0xa5);
        s.set_input(nl.find("sel").unwrap(), 1);
        assert_eq!(s.value_of("out"), 0xa);
        s.set_input(nl.find("sel").unwrap(), 0);
        assert_eq!(s.value_of("out"), 0x5);
    }

    #[test]
    fn mem_array_reads_writes() {
        let mut b = Builder::new();
        let addr = b.input("addr", 2);
        let data = b.input("data", 8);
        let we = b.input("we", 1);
        let mut mem = netlist::MemArray::new(&mut b, "m", 4, 8);
        let rd = mem.read(&mut b, addr);
        b.name(rd, "rd");
        mem.write(we, addr, data);
        mem.finish(&mut b).unwrap();
        let nl = b.finish().unwrap();
        let mut s = Simulator::new(&nl);
        let (a, d, w) = (
            nl.find("addr").unwrap(),
            nl.find("data").unwrap(),
            nl.find("we").unwrap(),
        );
        s.set_inputs([(a, 2), (d, 99), (w, 1)]);
        s.step();
        s.set_inputs([(a, 2), (d, 0), (w, 0)]);
        assert_eq!(s.value_of("rd"), 99);
        s.set_input(a, 1);
        assert_eq!(s.value_of("rd"), 0);
    }

    #[test]
    fn later_mem_writes_take_priority() {
        let mut b = Builder::new();
        let addr = b.input("addr", 2);
        let d0 = b.input("d0", 8);
        let d1 = b.input("d1", 8);
        let en = b.input("en", 1);
        let mut mem = netlist::MemArray::new(&mut b, "m", 4, 8);
        let rd = mem.read(&mut b, addr);
        b.name(rd, "rd");
        mem.write(en, addr, d0);
        mem.write(en, addr, d1); // queued later => wins
        mem.finish(&mut b).unwrap();
        let nl = b.finish().unwrap();
        let mut s = Simulator::new(&nl);
        s.set_inputs([
            (nl.find("addr").unwrap(), 0),
            (nl.find("d0").unwrap(), 1),
            (nl.find("d1").unwrap(), 2),
            (nl.find("en").unwrap(), 1),
        ]);
        s.step();
        s.set_input(nl.find("en").unwrap(), 0);
        assert_eq!(s.value_of("rd"), 2);
    }

    #[test]
    fn replay_matches_manual_stepping() {
        let mut b = Builder::new();
        let x = b.input("x", 8);
        let acc = b.reg("acc", 8, 0);
        let sum = b.add(acc, x);
        b.set_next(acc, sum).unwrap();
        let nl = b.finish().unwrap();
        let (x, acc) = (nl.find("x").unwrap(), nl.find("acc").unwrap());
        let script: Vec<HashMap<SignalId, u64>> =
            (1..=4).map(|i| HashMap::from([(x, i as u64)])).collect();
        let vals = replay(&nl, &script, &[acc]);
        assert_eq!(
            vals.iter().map(|r| r[0]).collect::<Vec<_>>(),
            vec![0, 1, 3, 6]
        );
    }

    #[test]
    fn recorder_renders_names() {
        let mut b = Builder::new();
        let c = b.reg("cnt", 4, 0);
        let one = b.constant(1, 4);
        let n = b.add(c, one);
        b.set_next(c, n).unwrap();
        let nl = b.finish().unwrap();
        let c = nl.find("cnt").unwrap();
        let mut s = Simulator::new(&nl);
        let mut rec = Recorder::new(vec![c]);
        rec.sample(&mut s);
        s.step();
        rec.sample(&mut s);
        let table = rec.render(&nl);
        assert!(table.contains("cnt"));
        assert_eq!(rec.column(c), vec![0, 1]);
    }

    #[test]
    fn shift_ops_match_semantics() {
        let mut b = Builder::new();
        let x = b.input("x", 8);
        let amt = b.input("amt", 4);
        let l = b.shl(x, amt);
        let r = b.shr(x, amt);
        b.name(l, "l");
        b.name(r, "r");
        let nl = b.finish().unwrap();
        let mut s = Simulator::new(&nl);
        s.set_inputs([(nl.find("x").unwrap(), 0x81), (nl.find("amt").unwrap(), 1)]);
        assert_eq!(s.value_of("l"), 0x02);
        assert_eq!(s.value_of("r"), 0x40);
        s.set_input(nl.find("amt").unwrap(), 9);
        assert_eq!(s.value_of("l"), 0, "overshift is zero");
        assert_eq!(s.value_of("r"), 0);
    }
}
