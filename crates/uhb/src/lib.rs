//! The µHB-graph formalism: performing locations, cycle-accurate µPATHs,
//! and decisions.
//!
//! This crate is the data model shared by `mupath` (which synthesizes these
//! objects from RTL) and `synthlc` (which analyses them for leakage):
//!
//! * [`PlId`]/[`PlTable`] — performing locations (§III-C): granular pipeline
//!   steps, each a ⟨µFSM, state⟩ pair identified by a row label like `mulU`
//!   or `ldStall`.
//! * [`ConcretePath`] — one instruction execution as the exact cycles it
//!   occupied each PL (the cycle-accurate µHB columns of §III-B, including
//!   `Row(1)`/`Row(l)` consecutive-revisit summaries).
//! * [`MuPath`] — a *path shape*: the reachable PL set plus revisit
//!   classification and happens-before edges (what §V-B4/§V-B5 synthesize).
//! * [`Decision`] — a ⟨source PL, destination PL set⟩ divergence point
//!   (§IV-B), extracted from a family of concrete paths by
//!   [`decisions_of_paths`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a performing location.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PlId(pub u32);

impl PlId {
    /// Index into [`PlTable`] storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pl{}", self.0)
    }
}

/// The label table for a design's performing locations.
#[derive(Clone, Debug, Default)]
pub struct PlTable {
    names: Vec<String>,
}

impl PlTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a PL with a row label, returning its id.
    pub fn add(&mut self, name: impl Into<String>) -> PlId {
        let id = PlId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// The row label of a PL.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn name(&self, pl: PlId) -> &str {
        &self.names[pl.index()]
    }

    /// Number of PLs.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks up a PL by label.
    pub fn find(&self, name: &str) -> Option<PlId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| PlId(i as u32))
    }

    /// All PL ids.
    pub fn ids(&self) -> impl Iterator<Item = PlId> + '_ {
        (0..self.names.len() as u32).map(PlId)
    }
}

/// How an instruction revisits a PL across one execution (§III-B, §V-B4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Revisit {
    /// Visited in exactly one cycle.
    Single,
    /// Visited in `l >= 2` *consecutive* cycles (summarised as
    /// `Row(1)…Row(l)`).
    Consecutive,
    /// Visited, left, and re-entered (non-consecutive revisit).
    NonConsecutive,
}

/// One instruction execution, as the exact cycles each PL was occupied.
///
/// Cycle numbers are relative to the instruction's fetch.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ConcretePath {
    occupancy: BTreeMap<PlId, Vec<usize>>,
}

impl ConcretePath {
    /// Creates an empty path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the instruction occupied `pl` during `cycle`.
    pub fn visit(&mut self, pl: PlId, cycle: usize) {
        let cycles = self.occupancy.entry(pl).or_default();
        match cycles.binary_search(&cycle) {
            Ok(_) => {}
            Err(pos) => cycles.insert(pos, cycle),
        }
    }

    /// The sorted cycles during which `pl` was occupied.
    pub fn cycles(&self, pl: PlId) -> &[usize] {
        self.occupancy.get(&pl).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The set of visited PLs.
    pub fn pl_set(&self) -> BTreeSet<PlId> {
        self.occupancy.keys().copied().collect()
    }

    /// Whether any PL was visited.
    pub fn is_empty(&self) -> bool {
        self.occupancy.is_empty()
    }

    /// Classifies the revisit behaviour of each visited PL.
    pub fn revisits(&self) -> BTreeMap<PlId, Revisit> {
        self.occupancy
            .iter()
            .map(|(&pl, cycles)| {
                let r = if cycles.len() == 1 {
                    Revisit::Single
                } else if cycles.windows(2).all(|w| w[1] == w[0] + 1) {
                    Revisit::Consecutive
                } else {
                    Revisit::NonConsecutive
                };
                (pl, r)
            })
            .collect()
    }

    /// The instruction's total latency: last occupied cycle minus first,
    /// plus one. Zero for an empty path.
    pub fn latency(&self) -> usize {
        let first = self
            .occupancy
            .values()
            .filter_map(|c| c.first())
            .min()
            .copied();
        let last = self
            .occupancy
            .values()
            .filter_map(|c| c.last())
            .max()
            .copied();
        match (first, last) {
            (Some(a), Some(b)) => b - a + 1,
            _ => 0,
        }
    }

    /// The PLs occupied during a specific cycle.
    pub fn pls_at(&self, cycle: usize) -> BTreeSet<PlId> {
        self.occupancy
            .iter()
            .filter(|(_, cycles)| cycles.binary_search(&cycle).is_ok())
            .map(|(&pl, _)| pl)
            .collect()
    }

    /// The *shape* of the path: PL set + revisit classes. Two executions
    /// with the same shape are the same µPATH in the §V-B4 sense.
    pub fn shape(&self) -> MuPath {
        MuPath {
            pls: self.pl_set(),
            revisits: self.revisits(),
            edges: BTreeSet::new(),
        }
    }

    /// Renders a Fig. 1-style ASCII µHB column: one row per PL, one column
    /// per cycle, `●` for occupancy, with `Row(1)/Row(l)` labels for
    /// consecutive runs.
    pub fn render(&self, pls: &PlTable) -> String {
        let max_cycle = self
            .occupancy
            .values()
            .filter_map(|c| c.last())
            .max()
            .copied()
            .unwrap_or(0);
        let name_w = self
            .occupancy
            .keys()
            .map(|&p| pls.name(p).len() + 6)
            .max()
            .unwrap_or(8)
            .max(8);
        let mut out = String::new();
        out.push_str(&format!("{:name_w$} ", "cycle:"));
        for t in 0..=max_cycle {
            out.push_str(&format!("{t:>3}"));
        }
        out.push('\n');
        let revisits = self.revisits();
        for (&pl, cycles) in &self.occupancy {
            let label = match revisits[&pl] {
                Revisit::Single => pls.name(pl).to_owned(),
                Revisit::Consecutive => format!("{}(1/{})", pls.name(pl), cycles.len()),
                Revisit::NonConsecutive => format!("{}(*)", pls.name(pl)),
            };
            out.push_str(&format!("{label:name_w$} "));
            for t in 0..=max_cycle {
                if cycles.binary_search(&t).is_ok() {
                    out.push_str("  ●");
                } else {
                    out.push_str("  .");
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A synthesized µPATH shape: reachable PL set, revisit classes, and
/// happens-before edges (at PL granularity; an edge `(a, b)` means a visit
/// to `a` happens one cycle before a visit to `b` in this path).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MuPath {
    /// The PLs visited.
    pub pls: BTreeSet<PlId>,
    /// Revisit classification per PL.
    pub revisits: BTreeMap<PlId, Revisit>,
    /// Happens-before edges.
    pub edges: BTreeSet<(PlId, PlId)>,
}

impl MuPath {
    /// Whether two µPATHs have the same PL set (but possibly different
    /// revisit behaviour — still distinct µPATHs per §III-B).
    pub fn same_pl_set(&self, other: &MuPath) -> bool {
        self.pls == other.pls
    }

    /// A compact one-line description.
    pub fn describe(&self, pls: &PlTable) -> String {
        let mut parts: Vec<String> = Vec::new();
        for &pl in &self.pls {
            let tag = match self.revisits.get(&pl) {
                Some(Revisit::Consecutive) => "(1..l)",
                Some(Revisit::NonConsecutive) => "(*)",
                _ => "",
            };
            parts.push(format!("{}{}", pls.name(pl), tag));
        }
        format!("{{{}}}", parts.join(", "))
    }
}

/// A decision (§IV-B): at `src`, execution diverges to one of several
/// destination PL sets; this record names one of them.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Decision {
    /// The decision source PL.
    pub src: PlId,
    /// The decision destinations: the exact PLs visited one cycle later.
    pub dst: BTreeSet<PlId>,
}

impl Decision {
    /// A compact rendering like `issue -> {LSQ, ldStall}`.
    pub fn describe(&self, pls: &PlTable) -> String {
        let dsts: Vec<&str> = self.dst.iter().map(|&p| pls.name(p)).collect();
        format!("{} -> {{{}}}", pls.name(self.src), dsts.join(", "))
    }
}

/// Extracts all decisions from a family of concrete paths, per the §IV-B
/// definition: `(src, dst)` is a decision iff some path visits `src` one
/// cycle before exactly `dst`, and another path (or another visit) visits
/// `src` one cycle before a *different* PL set.
///
/// Successor sets are computed per (path, cycle where `src` is occupied);
/// decisions exist only for sources with at least two distinct successor
/// sets.
pub fn decisions_of_paths(paths: &[ConcretePath]) -> Vec<Decision> {
    let mut successors: BTreeMap<PlId, BTreeSet<BTreeSet<PlId>>> = BTreeMap::new();
    for p in paths {
        for &src in &p.pl_set() {
            for &t in p.cycles(src) {
                let next = p.pls_at(t + 1);
                successors.entry(src).or_default().insert(next);
            }
        }
    }
    let mut out = Vec::new();
    for (src, dsts) in successors {
        if dsts.len() >= 2 {
            for dst in dsts {
                out.push(Decision { src, dst });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (PlTable, PlId, PlId, PlId, PlId) {
        let mut t = PlTable::new();
        let if_ = t.add("IF");
        let id = t.add("ID");
        let ex = t.add("EX");
        let wb = t.add("WB");
        (t, if_, id, ex, wb)
    }

    #[test]
    fn revisit_classification() {
        let (_, if_, id, ex, _) = table();
        let mut p = ConcretePath::new();
        p.visit(if_, 0);
        p.visit(id, 1);
        p.visit(id, 2);
        p.visit(ex, 3);
        p.visit(ex, 5);
        let r = p.revisits();
        assert_eq!(r[&if_], Revisit::Single);
        assert_eq!(r[&id], Revisit::Consecutive);
        assert_eq!(r[&ex], Revisit::NonConsecutive);
        assert_eq!(p.latency(), 6);
    }

    #[test]
    fn duplicate_visits_are_idempotent() {
        let (_, if_, ..) = table();
        let mut p = ConcretePath::new();
        p.visit(if_, 3);
        p.visit(if_, 3);
        assert_eq!(p.cycles(if_), &[3]);
    }

    #[test]
    fn pls_at_cycle() {
        let (_, if_, id, ..) = table();
        let mut p = ConcretePath::new();
        p.visit(if_, 0);
        p.visit(id, 0);
        p.visit(id, 1);
        assert_eq!(p.pls_at(0), [if_, id].into_iter().collect());
        assert_eq!(p.pls_at(1), [id].into_iter().collect());
        assert!(p.pls_at(2).is_empty());
    }

    #[test]
    fn decisions_require_divergence() {
        let (_, if_, id, ex, wb) = table();
        // Path A: IF@0, ID@1, EX@2. Path B: IF@0, ID@1, WB@2.
        let mut a = ConcretePath::new();
        a.visit(if_, 0);
        a.visit(id, 1);
        a.visit(ex, 2);
        let mut b = ConcretePath::new();
        b.visit(if_, 0);
        b.visit(id, 1);
        b.visit(wb, 2);
        let ds = decisions_of_paths(&[a.clone(), b]);
        // IF always goes to ID (no decision); ID diverges; EX/WB are leaves
        // whose single successor set (empty) never diverges.
        assert!(ds.iter().all(|d| d.src != if_));
        let id_dsts: Vec<_> = ds.iter().filter(|d| d.src == id).collect();
        assert_eq!(id_dsts.len(), 2);
        // A path alone yields no decisions.
        assert!(decisions_of_paths(&[a]).is_empty());
    }

    #[test]
    fn render_shows_consecutive_summary() {
        let (t, if_, id, ..) = table();
        let mut p = ConcretePath::new();
        p.visit(if_, 0);
        p.visit(id, 1);
        p.visit(id, 2);
        p.visit(id, 3);
        let s = p.render(&t);
        assert!(s.contains("ID(1/3)"), "consecutive run summarised: {s}");
        assert!(s.contains("●"));
    }

    #[test]
    fn shape_equality_distinguishes_revisits() {
        let (_, if_, id, ..) = table();
        let mut once = ConcretePath::new();
        once.visit(if_, 0);
        once.visit(id, 1);
        let mut twice = ConcretePath::new();
        twice.visit(if_, 0);
        twice.visit(id, 1);
        twice.visit(id, 2);
        assert!(once.shape().same_pl_set(&twice.shape()));
        assert_ne!(once.shape(), twice.shape(), "revisit class distinguishes");
    }
}

/// Renders a µPATH (with its happens-before edges) as a Graphviz DOT
/// digraph, one node per PL (revisit-annotated), suitable for visualising
/// the paper's figures.
pub fn to_dot(path: &MuPath, pls: &PlTable, title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{title}\" {{\n  rankdir=TB;\n"));
    for &pl in &path.pls {
        let label = match path.revisits.get(&pl) {
            Some(Revisit::Consecutive) => format!("{}(1..l)", pls.name(pl)),
            Some(Revisit::NonConsecutive) => format!("{}(*)", pls.name(pl)),
            _ => pls.name(pl).to_owned(),
        };
        out.push_str(&format!("  pl{} [label=\"{label}\", shape=box];\n", pl.0));
    }
    for &(a, b) in &path.edges {
        out.push_str(&format!("  pl{} -> pl{};\n", a.0, b.0));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut t = PlTable::new();
        let a = t.add("IF");
        let b = t.add("ID");
        let mut p = ConcretePath::new();
        p.visit(a, 0);
        p.visit(b, 1);
        p.visit(b, 2);
        let mut shape = p.shape();
        shape.edges.insert((a, b));
        let dot = to_dot(&shape, &t, "test");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("IF"));
        assert!(dot.contains("ID(1..l)"));
        assert!(dot.contains("pl0 -> pl1"));
    }
}
