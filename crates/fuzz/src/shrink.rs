//! Delta-debugging of failing genomes.
//!
//! A greedy ddmin over the op list: repeatedly try deleting chunks of ops
//! (largest chunks first, halving down to single ops) and keep any
//! deletion under which the mismatch persists. Because [`crate::gen::build`]
//! is total and operand references are modulo-indexed, *every* candidate
//! sublist is a valid design — the predicate, not the builder, decides
//! what survives. The attempt budget bounds worst-case work; the result
//! is deterministic for a deterministic predicate.

use crate::gen::Genome;

/// Shrinks `genome` while `still_fails` keeps returning `true` for the
/// candidate, spending at most `max_attempts` predicate calls. Returns
/// the smallest failing genome found and the number of attempts spent.
pub fn shrink<F>(genome: &Genome, mut still_fails: F, max_attempts: usize) -> (Genome, usize)
where
    F: FnMut(&Genome) -> bool,
{
    let mut best = genome.clone();
    let mut attempts = 0usize;
    let mut chunk = (best.ops.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0usize;
        while start < best.ops.len() {
            if attempts >= max_attempts {
                return (best, attempts);
            }
            let end = (start + chunk).min(best.ops.len());
            let mut candidate = best.clone();
            candidate.ops.drain(start..end);
            attempts += 1;
            if still_fails(&candidate) {
                best = candidate;
                progressed = true;
                // Same `start` now addresses the next chunk.
            } else {
                start = end;
            }
        }
        if !progressed {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    // Final polish: zero out the constants if the mismatch survives that.
    if attempts < max_attempts && best.cover_cmp != 0 {
        let mut candidate = best.clone();
        candidate.cover_cmp = 0;
        attempts += 1;
        if still_fails(&candidate) {
            best = candidate;
        }
    }
    (best, attempts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{sample_genome, GenConfig, GenOp};
    use prng::Rng;

    #[test]
    fn shrinks_to_the_single_blamed_op() {
        let mut rng = Rng::new(42);
        let g = sample_genome(&mut rng, &GenConfig::default());
        assert!(g.ops.len() > 4);
        // Predicate: "fails" iff the genome still contains a register op.
        // The minimum is exactly one op.
        let fails = |c: &Genome| c.ops.iter().any(|op| matches!(op, GenOp::Reg { .. }));
        let (small, attempts) = shrink(&g, fails, 10_000);
        assert_eq!(small.ops.len(), 1, "shrunk to a single op");
        assert!(matches!(small.ops[0], GenOp::Reg { .. }));
        assert!(attempts > 0);
    }

    #[test]
    fn respects_the_attempt_budget() {
        let mut rng = Rng::new(43);
        let g = sample_genome(&mut rng, &GenConfig::default());
        let mut calls = 0usize;
        let (_, attempts) = shrink(
            &g,
            |_| {
                calls += 1;
                true
            },
            7,
        );
        assert!(attempts <= 7, "attempt budget honored, spent {attempts}");
        assert_eq!(calls, attempts, "one predicate call per attempt");
    }

    #[test]
    fn never_fails_means_no_change() {
        let mut rng = Rng::new(44);
        let g = sample_genome(&mut rng, &GenConfig::default());
        let (same, _) = shrink(&g, |_| false, 1_000);
        assert_eq!(same, g);
    }
}
