//! Differential-oracle fuzzing of the verification stack.
//!
//! The paper's soundness story rests on every µPATH and leakage verdict
//! being backed by a formal engine; this crate stress-tests those engines
//! against *independent* implementations on randomly generated designs
//! (see `DESIGN.md` §9). One [`run_fuzz`] call:
//!
//! 1. derives a genome per case from the run seed ([`gen`]),
//! 2. builds it into a lint-clean netlist (asserted every case),
//! 3. runs the design through the configured [`oracle::OracleKind`]s,
//! 4. shrinks any mismatch with [`shrink::shrink`] and serializes a
//!    minimized, replayable [`repro::Repro`],
//! 5. returns a byte-deterministic [`FuzzReport`].
//!
//! Identical seeds produce byte-identical reports — wall-clock never
//! enters the report, and a deadline only truncates the case loop at a
//! case boundary (recorded in the `completed` flag).

use std::collections::BTreeMap;
use std::sync::Arc;

pub mod dpll;
pub mod gen;
pub mod oracle;
pub mod repro;
pub mod shrink;

pub use gen::{build, lint, sample_genome, BuiltDesign, GenConfig, GenOp, Genome};
pub use oracle::{replay_witness, run_oracle, CaseResult, OracleKind, OracleOpts};
pub use repro::Repro;
pub use shrink::shrink as shrink_genome;

use jsonio::Json;
use prng::Rng;
use sat::CancelToken;

/// A deliberately planted engine defect, reachable only through test
/// configuration — used to prove the oracles actually catch bugs (and to
/// exercise the shrink/repro pipeline end to end).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeededBug {
    /// Mutates the satisfaction comparison inside the reference DPLL, so
    /// oracle (a) sees the reference disagree with CDCL.
    DpllBadSat,
    /// Injects a `ForceUnknown` fault into the BMC checker and misreads
    /// the degraded `Undetermined` as an `Unreachable` proof — the
    /// verdict-flipping failure mode `--fault-rate` runs must never turn
    /// into, caught by oracle (b)'s brute-force enumeration.
    ForceUnknownMisread,
}

/// One [`run_fuzz`] invocation's knobs.
#[derive(Clone)]
pub struct FuzzConfig {
    /// Base seed; every genome and verdict derives from it.
    pub seed: u64,
    /// Number of designs to generate (each runs through every oracle).
    pub cases: u64,
    /// Generator size knobs.
    pub gen: GenConfig,
    /// BMC bound shared by all oracles.
    pub bound: usize,
    /// Which oracles to run, in order.
    pub oracles: Vec<OracleKind>,
    /// Shrinker predicate-call budget per mismatch.
    pub shrink_attempts: usize,
    /// Stop the run once this many mismatches were minimized.
    pub max_mismatches: usize,
    /// Wall-clock stop, polled at case boundaries (reports stay
    /// deterministic as long as it never fires).
    pub deadline: Option<Arc<CancelToken>>,
    /// Sweep every solver knob combination inside the SAT oracle (see
    /// [`OracleOpts::knob_sweep`]).
    pub knob_sweep: bool,
    /// A planted defect (tests only).
    pub seeded_bug: Option<SeededBug>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            cases: 16,
            // Small state spaces keep the brute-force reference engines
            // exhaustive rather than skipped.
            gen: GenConfig {
                max_cells: 20,
                max_regs: 2,
                max_inputs: 2,
                max_width: 3,
            },
            bound: 4,
            oracles: OracleKind::ALL.to_vec(),
            shrink_attempts: 300,
            max_mismatches: 5,
            deadline: None,
            knob_sweep: false,
            seeded_bug: None,
        }
    }
}

/// Verdict bookkeeping for one oracle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Cases where both engines agreed.
    pub agree: u64,
    /// Cases where the engines disagreed (each has a repro).
    pub mismatch: u64,
    /// Cases skipped before comparison, by reason.
    pub skipped: BTreeMap<String, u64>,
    /// Agreement lines by canonical verdict (e.g. `reachable@2`).
    pub verdicts: BTreeMap<String, u64>,
}

/// The deterministic result of a fuzz run.
pub struct FuzzReport {
    /// Echo of the run seed.
    pub seed: u64,
    /// Echo of the requested case count.
    pub cases: u64,
    /// Echo of the BMC bound.
    pub bound: usize,
    /// Cases actually generated and oracled.
    pub cases_run: u64,
    /// False when the deadline or the mismatch cap cut the run short.
    pub completed: bool,
    /// Per-oracle outcome counts, in [`OracleKind::ALL`] order.
    pub stats: Vec<(OracleKind, OracleStats)>,
    /// Minimized repros, in discovery order.
    pub mismatches: Vec<Repro>,
}

impl FuzzReport {
    /// True when any oracle disagreed.
    pub fn has_mismatches(&self) -> bool {
        !self.mismatches.is_empty()
    }

    fn stats_mut(&mut self, kind: OracleKind) -> &mut OracleStats {
        let ix = self
            .stats
            .iter()
            .position(|(k, _)| *k == kind)
            .expect("stats row exists for every configured oracle");
        &mut self.stats[ix].1
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        let oracles = self
            .stats
            .iter()
            .map(|(kind, st)| {
                let skipped = st
                    .skipped
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::Int(v)))
                    .collect();
                let verdicts = st
                    .verdicts
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::Int(v)))
                    .collect();
                (
                    kind.label().to_string(),
                    Json::Obj(vec![
                        ("agree".into(), Json::Int(st.agree)),
                        ("mismatch".into(), Json::Int(st.mismatch)),
                        ("skipped".into(), Json::Obj(skipped)),
                        ("verdicts".into(), Json::Obj(verdicts)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("synthlc-fuzz-v1".into())),
            ("seed".into(), Json::Int(self.seed)),
            ("cases".into(), Json::Int(self.cases)),
            ("bound".into(), Json::Int(self.bound as u64)),
            ("cases_run".into(), Json::Int(self.cases_run)),
            ("completed".into(), Json::Bool(self.completed)),
            ("oracles".into(), Json::Obj(oracles)),
            (
                "mismatches".into(),
                Json::Arr(self.mismatches.iter().map(Repro::to_json).collect()),
            ),
        ])
    }

    /// Pretty-printed report; byte-identical across runs of the same
    /// completed configuration.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

/// Derives the case's private seed from the run seed (same construction
/// as [`prng::for_each_case`], so a failing case index is reproducible in
/// isolation).
pub fn case_seed(run_seed: u64, case: u64) -> u64 {
    Rng::new(run_seed ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d)).next_u64()
}

/// Runs the configured differential fuzz campaign.
///
/// # Panics
/// Panics if a generated design fails the lint suite — that is a
/// generator bug, not an engine mismatch, and must never be shrunk away.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport {
        seed: cfg.seed,
        cases: cfg.cases,
        bound: cfg.bound,
        cases_run: 0,
        completed: true,
        stats: cfg
            .oracles
            .iter()
            .map(|&k| (k, OracleStats::default()))
            .collect(),
        mismatches: Vec::new(),
    };
    let opts = OracleOpts {
        bound: cfg.bound,
        knob_sweep: cfg.knob_sweep,
        seeded_bug: cfg.seeded_bug,
        ..Default::default()
    };
    'cases: for case in 0..cfg.cases {
        if cfg.deadline.as_deref().is_some_and(|d| d.fired().is_some()) {
            report.completed = false;
            break;
        }
        let mut rng = Rng::new(case_seed(cfg.seed, case));
        let genome = sample_genome(&mut rng, &cfg.gen);
        let design = build(&genome);
        let lint_report = lint(&design);
        assert!(
            lint_report.is_clean(),
            "generator invariant violated on case {case} (seed {}):\n{}",
            cfg.seed,
            lint_report.render()
        );
        report.cases_run += 1;
        for &kind in &cfg.oracles {
            match run_oracle(kind, &design, &opts) {
                CaseResult::Agree(verdict) => {
                    let st = report.stats_mut(kind);
                    st.agree += 1;
                    *st.verdicts.entry(verdict).or_insert(0) += 1;
                }
                CaseResult::Skipped(reason) => {
                    *report
                        .stats_mut(kind)
                        .skipped
                        .entry(reason.to_string())
                        .or_insert(0) += 1;
                }
                CaseResult::Mismatch {
                    expected,
                    actual,
                    detail,
                } => {
                    report.stats_mut(kind).mismatch += 1;
                    let (small, attempts) = shrink_genome(
                        &genome,
                        |g| run_oracle(kind, &build(g), &opts).is_mismatch(),
                        cfg.shrink_attempts,
                    );
                    // Re-run on the minimized genome so the recorded
                    // verdicts describe the shrunk design.
                    let (expected, actual, detail) = match run_oracle(kind, &build(&small), &opts) {
                        CaseResult::Mismatch {
                            expected,
                            actual,
                            detail,
                        } => (expected, actual, detail),
                        _ => (expected, actual, detail),
                    };
                    report.mismatches.push(Repro {
                        oracle: kind,
                        seed: cfg.seed,
                        case,
                        bound: cfg.bound as u64,
                        genome: small,
                        expected,
                        actual,
                        detail,
                        shrink_attempts: attempts as u64,
                    });
                    if report.mismatches.len() >= cfg.max_mismatches {
                        report.completed = false;
                        break 'cases;
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_engines_agree_and_reports_are_deterministic() {
        let cfg = FuzzConfig {
            seed: 0xF00D,
            cases: 12,
            ..Default::default()
        };
        let a = run_fuzz(&cfg);
        assert!(
            !a.has_mismatches(),
            "cross-engine mismatch on healthy engines:\n{}",
            a.render()
        );
        assert_eq!(a.cases_run, 12);
        assert!(a.completed);
        let b = run_fuzz(&cfg);
        assert_eq!(a.render(), b.render(), "same seed, byte-identical report");
        // Sanity: the oracles did real comparisons, not wall-to-wall skips.
        let total_agree: u64 = a.stats.iter().map(|(_, s)| s.agree).sum();
        assert!(total_agree >= 12, "agreement count {total_agree} too low");
    }

    #[test]
    fn knob_sweep_verdicts_are_invariant_across_solver_configs() {
        let cfg = FuzzConfig {
            seed: 0x5EED,
            cases: 10,
            oracles: vec![OracleKind::Sat],
            knob_sweep: true,
            ..Default::default()
        };
        let report = run_fuzz(&cfg);
        assert!(
            !report.has_mismatches(),
            "a solver knob changed a verdict:\n{}",
            report.render()
        );
        let (_, sat_stats) = &report.stats[0];
        // Every compared case went through the sweep (verdict lines carry
        // the `+sweep` marker), and at least one case was compared at all.
        assert!(sat_stats.agree >= 1, "sweep ran on zero cases");
        assert!(
            sat_stats.verdicts.keys().all(|v| v.ends_with("+sweep")),
            "sweep marker missing from verdict lines: {:?}",
            sat_stats.verdicts
        );
    }

    #[test]
    fn seeded_dpll_bug_is_caught_shrunk_and_replayable() {
        let cfg = FuzzConfig {
            seed: 0xBEEF,
            cases: 8,
            oracles: vec![OracleKind::Sat],
            max_mismatches: 1,
            seeded_bug: Some(SeededBug::DpllBadSat),
            ..Default::default()
        };
        let report = run_fuzz(&cfg);
        assert!(
            report.has_mismatches(),
            "planted DPLL defect went undetected"
        );
        let repro = &report.mismatches[0];
        let original = sample_genome(&mut Rng::new(case_seed(repro.seed, repro.case)), &cfg.gen);
        assert!(
            repro.genome.ops.len() <= original.ops.len(),
            "shrinking never grows the genome"
        );
        // The serialized line replays from nothing.
        let line = repro.encode();
        let back = Repro::decode(&line).expect("repro line decodes");
        assert!(
            back.replay(Some(SeededBug::DpllBadSat)).is_mismatch(),
            "replay with the planted bug must reproduce the mismatch"
        );
        assert!(
            !back.replay(None).is_mismatch(),
            "replay on healthy engines must come back clean"
        );
    }

    #[test]
    fn seeded_verdict_flip_is_caught_by_brute_force() {
        let cfg = FuzzConfig {
            seed: 0xCAFE,
            cases: 16,
            oracles: vec![OracleKind::Bmc],
            max_mismatches: 1,
            seeded_bug: Some(SeededBug::ForceUnknownMisread),
            ..Default::default()
        };
        let report = run_fuzz(&cfg);
        assert!(
            report.has_mismatches(),
            "flipped ForceUnknown verdict went undetected:\n{}",
            report.render()
        );
        let repro = &report.mismatches[0];
        assert_eq!(repro.oracle, OracleKind::Bmc);
        assert!(repro.expected.starts_with("reachable"));
        assert!(
            !repro.replay(None).is_mismatch(),
            "healthy BMC agrees with brute force on the shrunk design"
        );
    }

    #[test]
    fn prefired_deadline_truncates_but_stays_well_formed() {
        let cfg = FuzzConfig {
            seed: 9,
            cases: 50,
            deadline: Some(Arc::new(CancelToken::deadline_in(
                std::time::Duration::ZERO,
            ))),
            ..Default::default()
        };
        let report = run_fuzz(&cfg);
        assert_eq!(report.cases_run, 0);
        assert!(!report.completed);
        assert!(report.render().contains("\"completed\": false"));
    }
}
