//! The seven differential oracles.
//!
//! Each oracle runs one generated design through two *independent*
//! implementations of the same question and reports whether the verdicts
//! agree. The engines share no code on the compared axis: the CDCL solver
//! is checked against a from-scratch DPLL, the model checker against the
//! interpreter-style simulator, symbolic induction against explicit-state
//! fixpoint enumeration, reductions against the unreduced baseline, the
//! IFT taint plane against two-run low-equivalence simulation, the
//! textual frontend (emit → parse → lower) against the in-memory IR, and
//! the persistent-solver pool (assumption-based incremental queries over
//! an extendable unrolling) against fresh one-shot solvers.

use crate::dpll::{self, DpllResult};
use crate::gen::BuiltDesign;
use crate::SeededBug;
use mc::{
    Checker, CoiSlice, InitMode, McConfig, Outcome, PoolKey, SolverPool, Trace, UndeterminedReason,
    Unrolling,
};
use netlist::{mask, Netlist, SignalId};
use sim::Simulator;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which engine pair a case exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleKind {
    /// (a) CDCL vs. reference DPLL on the bit-blasted unrolling CNF.
    Sat,
    /// (b) BMC verdicts vs. simulation: witness replay + brute-force reach.
    Bmc,
    /// (c) k-induction proofs vs. explicit-state fixpoint enumeration.
    Induction,
    /// (d) COI / static-prune / cache reductions on vs. off.
    Reductions,
    /// (e) IFT taint covers vs. two-run low-equivalence simulation.
    Ift,
    /// (f) Textual frontend round trip: emit → check → lower must be
    /// diagnostic-free, reproduce the IR structurally, and re-emit
    /// byte-identical text.
    Text,
    /// (g) A property fleet solved through one persistent pooled solver
    /// (assumption-based queries, bound grown in place via
    /// `ensure_bound`) vs. fresh per-query solvers.
    Incremental,
}

impl OracleKind {
    /// All seven oracles, in report order.
    pub const ALL: [OracleKind; 7] = [
        OracleKind::Sat,
        OracleKind::Bmc,
        OracleKind::Induction,
        OracleKind::Reductions,
        OracleKind::Ift,
        OracleKind::Text,
        OracleKind::Incremental,
    ];

    /// Stable lowercase name used in reports and repro files.
    pub fn label(self) -> &'static str {
        match self {
            OracleKind::Sat => "sat",
            OracleKind::Bmc => "bmc",
            OracleKind::Induction => "induction",
            OracleKind::Reductions => "reductions",
            OracleKind::Ift => "ift",
            OracleKind::Text => "text",
            OracleKind::Incremental => "incremental",
        }
    }

    /// Inverse of [`OracleKind::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// Per-case resource knobs. Defaults keep a case well under a millisecond
/// on typical generated sizes while skipping (not hanging on) outliers.
#[derive(Clone, Debug)]
pub struct OracleOpts {
    /// BMC bound (frames `0..bound` are checked).
    pub bound: usize,
    /// Reference-DPLL clause-scan cap before the case is skipped.
    pub dpll_step_cap: u64,
    /// Brute-force (state, input) expansion cap before the case is skipped.
    pub brute_cap: u64,
    /// Cycles simulated by the IFT low-equivalence runs.
    pub ift_cycles: usize,
    /// After the baseline CDCL-vs-DPLL comparison, re-solve the same CNF
    /// under every [`sat::SolverConfig`] knob combination and demand the
    /// verdict never moves (off by default — it multiplies the SAT
    /// oracle's work by the sweep size).
    pub knob_sweep: bool,
    /// A deliberately planted engine defect (tests only).
    pub seeded_bug: Option<SeededBug>,
}

impl Default for OracleOpts {
    fn default() -> Self {
        Self {
            bound: 4,
            dpll_step_cap: 2_000_000,
            brute_cap: 300_000,
            ift_cycles: 8,
            knob_sweep: false,
            seeded_bug: None,
        }
    }
}

/// Outcome of running one oracle over one design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaseResult {
    /// Both engines agree; the string is the canonical verdict line that
    /// feeds the deterministic report.
    Agree(String),
    /// The case was out of budget for the reference engine; nothing was
    /// compared.
    Skipped(&'static str),
    /// The engines disagree — a bug in one of them (or a planted one).
    Mismatch {
        /// The reference engine's verdict.
        expected: String,
        /// The engine-under-test's verdict.
        actual: String,
        /// Human-oriented context (sizes, frame numbers, signal names).
        detail: String,
    },
}

impl CaseResult {
    /// True for [`CaseResult::Mismatch`].
    pub fn is_mismatch(&self) -> bool {
        matches!(self, CaseResult::Mismatch { .. })
    }
}

/// Runs one oracle over one built design.
pub fn run_oracle(kind: OracleKind, d: &BuiltDesign, opts: &OracleOpts) -> CaseResult {
    match kind {
        OracleKind::Sat => oracle_sat(d, opts),
        OracleKind::Bmc => oracle_bmc(d, opts),
        OracleKind::Induction => oracle_induction(d, opts),
        OracleKind::Reductions => oracle_reductions(d, opts),
        OracleKind::Ift => oracle_ift(d, opts),
        OracleKind::Text => oracle_text(d),
        OracleKind::Incremental => oracle_incremental(d, opts),
    }
}

/// Oracle (f): the textual frontend against the in-memory IR. The
/// generated netlist is emitted as canonical text, re-compiled through
/// the full pipeline (lex → parse → resolve → typeck → lower → lint),
/// and the result must (1) carry zero diagnostics, (2) be structurally
/// identical to the original, and (3) re-emit byte-identically.
fn oracle_text(d: &BuiltDesign) -> CaseResult {
    let text = netlist::text::emit(&d.netlist);
    let result = netlist::text::check(&text, "<fuzz>");
    if !result.report.is_clean() {
        return CaseResult::Mismatch {
            expected: "0 diagnostics on emitted text".into(),
            actual: result.report.summary(),
            detail: result.report.render(),
        };
    }
    let Some(module) = result.module else {
        return CaseResult::Mismatch {
            expected: "lowered module".into(),
            actual: "no module".into(),
            detail: "clean report but lowering produced nothing".into(),
        };
    };
    if let Err(e) = d.netlist.same_structure(&module.netlist) {
        return CaseResult::Mismatch {
            expected: "structurally identical netlist".into(),
            actual: "structural difference".into(),
            detail: e,
        };
    }
    let text2 = netlist::text::emit(&module.netlist);
    if text != text2 {
        let byte = text
            .bytes()
            .zip(text2.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| text.len().min(text2.len()));
        return CaseResult::Mismatch {
            expected: format!("byte-identical re-emission ({} bytes)", text.len()),
            actual: format!("{} bytes, first difference at byte {byte}", text2.len()),
            detail: format!(
                "...{}... vs ...{}...",
                &text[byte.saturating_sub(20)..(byte + 20).min(text.len())],
                &text2[byte.saturating_sub(20)..(byte + 20).min(text2.len())]
            ),
        };
    }
    CaseResult::Agree(format!(
        "text roundtrip nodes={} bytes={}",
        d.netlist.len(),
        text.len()
    ))
}

/// Replays a `Reachable` trace cycle-accurately through the simulator:
/// every recorded signal value must match and the cover must fire at some
/// frame. `coi`, when present, restricts the comparison to in-cone
/// signals (out-of-cone model values are unconstrained placeholders).
/// Returns the first frame the cover fired at.
pub fn replay_witness(
    nl: &Netlist,
    trace: &Trace,
    cover: SignalId,
    coi: Option<&CoiSlice>,
) -> Result<usize, String> {
    let mut s = Simulator::new(nl);
    let script = trace.input_script();
    let mut fired = None;
    for (t, frame_inputs) in script.iter().enumerate() {
        for (&sig, &v) in frame_inputs {
            s.set_input(sig, v);
        }
        for (id, _) in nl.iter() {
            if coi.is_some_and(|c| !c.keeps(id)) {
                continue;
            }
            let sim_v = s.value(id);
            let model_v = trace.value(t, id);
            if sim_v != model_v {
                return Err(format!(
                    "frame {t}: {} is {sim_v:#x} in sim but {model_v:#x} in the witness",
                    nl.display_name(id)
                ));
            }
        }
        if fired.is_none() && s.value(cover) != 0 {
            fired = Some(t);
        }
        s.step();
    }
    fired.ok_or_else(|| "cover never fired during witness replay".to_string())
}

/// Explicit-state layered BFS from reset. Checks the cover on every
/// `(state, input)` expansion for frames `0..bound` (`bound == usize::MAX`
/// runs to the reachability fixpoint). Returns `None` when `cap`
/// expansions were exceeded, `Some(Some(t))` when the cover fires at
/// frame `t`, `Some(None)` when it provably cannot within the explored
/// horizon.
fn brute_reach(nl: &Netlist, cover: SignalId, bound: usize, cap: u64) -> Option<Option<usize>> {
    let inputs = nl.inputs();
    let regs = nl.regs();
    let input_bits: u32 = inputs.iter().map(|&i| nl.width(i) as u32).sum();
    if input_bits > 12 {
        return None;
    }
    let mut s = Simulator::new(nl);
    let reset: Vec<u64> = regs.iter().map(|&r| nl.reg_init(r)).collect();
    let mut visited: BTreeSet<Vec<u64>> = BTreeSet::new();
    visited.insert(reset.clone());
    let mut layer: BTreeSet<Vec<u64>> = BTreeSet::new();
    layer.insert(reset);
    let mut expansions = 0u64;
    let mut t = 0usize;
    while t < bound && !layer.is_empty() {
        let mut next_layer = BTreeSet::new();
        for state in &layer {
            for combo in 0..(1u64 << input_bits) {
                expansions += 1;
                if expansions > cap {
                    return None;
                }
                for (i, &r) in regs.iter().enumerate() {
                    s.poke_reg(r, state[i]);
                }
                let mut rest = combo;
                for &input in &inputs {
                    let w = nl.width(input);
                    s.set_input(input, rest & mask(w));
                    rest >>= w;
                }
                if s.value(cover) != 0 {
                    return Some(Some(t));
                }
                s.step();
                let ns: Vec<u64> = regs.iter().map(|&r| s.value(r)).collect();
                if visited.insert(ns.clone()) {
                    next_layer.insert(ns);
                }
            }
        }
        layer = next_layer;
        t += 1;
    }
    Some(None)
}

fn outcome_label(o: &Outcome) -> String {
    match o {
        Outcome::Reachable(_) => "reachable".to_string(),
        Outcome::Unreachable => "unreachable".to_string(),
        Outcome::Undetermined(r) => format!("undet:{}", r.label()),
    }
}

/// (a) CDCL vs. reference DPLL on the exact clause set of the unrolled
/// cover query, captured via the solver's clause log.
fn oracle_sat(d: &BuiltDesign, opts: &OracleOpts) -> CaseResult {
    let mut u = Unrolling::new(&d.netlist, InitMode::Reset);
    u.gate().solver().set_clause_log(true);
    u.extend_to(opts.bound);
    let cover_lits: Vec<sat::Lit> = (0..opts.bound).map(|t| u.lit(t, d.cover)).collect();
    u.gate().add_clause(&cover_lits);
    let true_lit = u.gate().true_lit();
    let num_vars = u.gate().num_vars();
    let cdcl = u.gate().solver().solve();
    // The gate builder's constant-true unit clause predates the log.
    let mut clauses: Vec<Vec<sat::Lit>> = vec![vec![true_lit]];
    clauses.extend(u.gate().solver_ref().logged_clauses().iter().cloned());
    let bug = opts.seeded_bug == Some(SeededBug::DpllBadSat);
    let reference = match dpll::solve(num_vars, &clauses, opts.dpll_step_cap, bug) {
        None => return CaseResult::Skipped("dpll-cap"),
        Some(r) => r,
    };
    let detail = format!("{num_vars} vars, {} clauses", clauses.len());
    let baseline = match (&reference, cdcl) {
        (DpllResult::Sat(model), r) if r.is_sat() => {
            if !dpll::model_satisfies(model, &clauses) {
                return CaseResult::Mismatch {
                    expected: "sat(model-valid)".into(),
                    actual: "sat(model-invalid)".into(),
                    detail,
                };
            }
            CaseResult::Agree("sat".into())
        }
        (DpllResult::Unsat, r) if r.is_unsat() => CaseResult::Agree("unsat".into()),
        (dp, r) => {
            return CaseResult::Mismatch {
                expected: match dp {
                    DpllResult::Sat(_) => "sat".into(),
                    DpllResult::Unsat => "unsat".into(),
                },
                actual: format!("{r:?}").to_lowercase(),
                detail,
            }
        }
    };
    if !opts.knob_sweep {
        return baseline;
    }
    // Knob sweep: the verdict must be invariant under every heuristic
    // configuration, and every Sat leg must hand back a valid model.
    for cfg in sat::SolverConfig::all_combinations() {
        if let Some(mismatch) = sweep_one_config(cfg, num_vars, &clauses, &reference, &detail) {
            return mismatch;
        }
    }
    match baseline {
        CaseResult::Agree(v) => CaseResult::Agree(format!("{v}+sweep")),
        other => other,
    }
}

/// Re-solves `clauses` under one knob configuration; `Some(mismatch)`
/// when its verdict departs from the DPLL reference or its model is
/// invalid.
fn sweep_one_config(
    cfg: sat::SolverConfig,
    num_vars: usize,
    clauses: &[Vec<sat::Lit>],
    reference: &DpllResult,
    detail: &str,
) -> Option<CaseResult> {
    let mut s = sat::Solver::with_config(cfg);
    let vars: Vec<sat::Var> = (0..num_vars).map(|_| s.new_var()).collect();
    for c in clauses {
        s.add_clause(c);
    }
    let r = s.solve();
    let expected_sat = matches!(reference, DpllResult::Sat(_));
    if expected_sat != r.is_sat() || (!expected_sat && !r.is_unsat()) {
        return Some(CaseResult::Mismatch {
            expected: if expected_sat { "sat" } else { "unsat" }.into(),
            actual: format!("{}({r:?})", cfg.label()).to_lowercase(),
            detail: format!("{detail}; knob sweep config {}", cfg.label()),
        });
    }
    if r.is_sat() {
        let model: Vec<bool> = vars.iter().map(|&v| s.value(v).unwrap_or(false)).collect();
        if !dpll::model_satisfies(&model, clauses) {
            return Some(CaseResult::Mismatch {
                expected: "sat(model-valid)".into(),
                actual: format!("{}(model-invalid)", cfg.label()),
                detail: format!("{detail}; knob sweep config {}", cfg.label()),
            });
        }
    }
    None
}

/// (b) BMC vs. simulation: `Reachable` witnesses must replay; an
/// `Unreachable`-within-bound verdict must survive exhaustive
/// enumeration of the bounded state space.
fn oracle_bmc(d: &BuiltDesign, opts: &OracleOpts) -> CaseResult {
    let cfg = McConfig {
        bound: opts.bound,
        bound_is_complete: true,
        try_induction: false,
        ..Default::default()
    };
    let mut chk = Checker::new(&d.netlist, cfg);
    if opts.seeded_bug == Some(SeededBug::ForceUnknownMisread) {
        chk.set_fault(UndeterminedReason::FaultInjected);
    }
    let outcome = chk.check_cover(d.cover, &[]);
    let verdict = match &outcome {
        Outcome::Reachable(trace) => {
            return match replay_witness(&d.netlist, trace, d.cover, None) {
                Ok(t) => CaseResult::Agree(format!("reachable@{t}")),
                Err(why) => CaseResult::Mismatch {
                    expected: "replayable witness".into(),
                    actual: "diverging witness".into(),
                    detail: why,
                },
            };
        }
        Outcome::Unreachable => "unreachable",
        Outcome::Undetermined(_) if opts.seeded_bug == Some(SeededBug::ForceUnknownMisread) => {
            // The planted defect: a fault-degraded Unknown misread as a
            // proof of unreachability.
            "unreachable"
        }
        Outcome::Undetermined(_) => return CaseResult::Skipped("undetermined"),
    };
    match brute_reach(&d.netlist, d.cover, opts.bound, opts.brute_cap) {
        None => CaseResult::Skipped("brute-cap"),
        Some(Some(t)) => CaseResult::Mismatch {
            expected: format!("reachable@{t}"),
            actual: verdict.into(),
            detail: format!(
                "brute-force fires the cover at frame {t} within bound {}",
                opts.bound
            ),
        },
        Some(None) => CaseResult::Agree(verdict.into()),
    }
}

/// (c) k-induction vs. bounded exhaustive enumeration: an
/// induction-backed `Unreachable` is a *global* claim, so it is checked
/// against the full reachability fixpoint, not just the BMC bound.
fn oracle_induction(d: &BuiltDesign, opts: &OracleOpts) -> CaseResult {
    let cfg = McConfig {
        bound: opts.bound,
        bound_is_complete: false,
        try_induction: true,
        induction_depth: 3.min(opts.bound),
        ..Default::default()
    };
    let mut chk = Checker::new(&d.netlist, cfg);
    match chk.check_cover(d.cover, &[]) {
        Outcome::Reachable(trace) => match replay_witness(&d.netlist, &trace, d.cover, None) {
            Ok(t) => CaseResult::Agree(format!("reachable@{t}")),
            Err(why) => CaseResult::Mismatch {
                expected: "replayable witness".into(),
                actual: "diverging witness".into(),
                detail: why,
            },
        },
        Outcome::Unreachable => {
            match brute_reach(&d.netlist, d.cover, usize::MAX, opts.brute_cap) {
                None => CaseResult::Skipped("brute-cap"),
                Some(Some(t)) => CaseResult::Mismatch {
                    expected: format!("reachable@{t}"),
                    actual: "unreachable(induction)".into(),
                    detail: format!("fixpoint enumeration fires the cover at frame {t}"),
                },
                Some(None) => CaseResult::Agree("unreachable(induction)".into()),
            }
        }
        Outcome::Undetermined(_) => CaseResult::Skipped("induction-failed"),
    }
}

/// (d) Reductions on vs. off: the COI-sliced checker, a repeated query on
/// the same checker (activation cache), and the static constant-cone
/// prune must all report the same verdict kind as the plain checker, and
/// every `Reachable` leg must hand back a replayable witness.
fn oracle_reductions(d: &BuiltDesign, opts: &OracleOpts) -> CaseResult {
    let cfg = McConfig {
        bound: opts.bound,
        bound_is_complete: true,
        try_induction: false,
        ..Default::default()
    };
    let legs = run_reduction_legs(d, cfg, opts);
    let (baseline, _) = &legs[0];
    for (verdict, name) in &legs[1..] {
        if verdict != baseline {
            return CaseResult::Mismatch {
                expected: format!("plain:{baseline}"),
                actual: format!("{name}:{verdict}"),
                detail: "reduction changed the verdict kind".into(),
            };
        }
    }
    CaseResult::Agree(baseline.clone())
}

/// Runs the four reduction legs, returning `(verdict-line, leg-name)`
/// pairs; a failed witness replay is folded into the verdict line so it
/// can never be mistaken for agreement.
fn run_reduction_legs(
    d: &BuiltDesign,
    cfg: McConfig,
    _opts: &OracleOpts,
) -> Vec<(String, &'static str)> {
    let mut legs: Vec<(String, &'static str)> = Vec::new();
    // Leg 0: plain checker (the baseline), queried twice — the second
    // query exercises the cover-activation cache.
    let mut plain = Checker::new(&d.netlist, cfg);
    let first = plain.check_cover(d.cover, &[]);
    legs.push((leg_verdict(d, &first, None), "plain"));
    let second = plain.check_cover(d.cover, &[]);
    legs.push((leg_verdict(d, &second, None), "cached-requery"));
    // Leg 2: cone-of-influence slice.
    let elab = Arc::new(mc::Elab::new(&d.netlist));
    let coi = Arc::new(CoiSlice::compute(&d.netlist, &[d.cover]));
    let mut sliced = Checker::with_coi(&d.netlist, cfg, &[], elab, Some(Arc::clone(&coi)));
    let sliced_out = sliced.check_cover(d.cover, &[]);
    legs.push((leg_verdict(d, &sliced_out, Some(&coi)), "coi"));
    // Leg 3: static prune — when the cover's cone contains no input and no
    // register, its reset-time simulated value decides the query without
    // any solver call.
    let cone_has_state = d
        .netlist
        .iter()
        .any(|(id, n)| coi.keeps(id) && (n.op.is_input() || n.op.is_reg()));
    if !cone_has_state {
        let mut s = Simulator::new(&d.netlist);
        let verdict = if s.value(d.cover) != 0 {
            // A constant-true cover fires at frame 0; agree iff the
            // baseline found *a* witness (frame may differ, so compare
            // kind only).
            match &first {
                Outcome::Reachable(_) => legs[0].0.clone(),
                _ => "reachable@0".to_string(),
            }
        } else {
            "unreachable".to_string()
        };
        legs.push((verdict, "static-prune"));
    }
    legs
}

/// Canonical per-leg verdict: `Reachable` legs must replay (the frame is
/// folded out of the line so legs with different-but-valid witnesses
/// still compare equal).
fn leg_verdict(d: &BuiltDesign, outcome: &Outcome, coi: Option<&CoiSlice>) -> String {
    match outcome {
        Outcome::Reachable(trace) => match replay_witness(&d.netlist, trace, d.cover, coi) {
            Ok(_) => "reachable".to_string(),
            Err(why) => format!("reachable(bad-witness: {why})"),
        },
        _ => outcome_label(outcome),
    }
}

/// (e) IFT soundness: any signal whose value differs between two runs
/// that disagree only in the taint source's initial value must carry
/// taint, and no signal outside the static forward closure may ever
/// carry taint.
fn oracle_ift(d: &BuiltDesign, opts: &OracleOpts) -> CaseResult {
    let regs = d.netlist.regs();
    let Some(&src) = regs.first() else {
        return CaseResult::Skipped("no-register");
    };
    let src_w = d.netlist.width(src);
    let inst = ift::instrument(
        &d.netlist,
        &ift::IftOptions {
            sources: vec![src],
            persistent: vec![],
            blocked: vec![],
        },
    );
    let en = inst
        .source_enable(src)
        .expect("source register has an enable input");
    let reach = ift::taint_reachable(&d.netlist, &[src], &[]);
    // Deterministic per-case input script.
    let inputs = d.netlist.inputs();
    let mut script_rng = prng::Rng::new(0x1f7_0000 ^ d.netlist.len() as u64);
    let script: Vec<Vec<(SignalId, u64)>> = (0..opts.ift_cycles)
        .map(|_| {
            inputs
                .iter()
                .map(|&i| (i, script_rng.next_u64() & mask(d.netlist.width(i))))
                .collect()
        })
        .collect();
    let val_a = 0u64;
    let val_b = mask(src_w);
    let run = |poke: u64| -> Vec<Vec<u64>> {
        let mut s = Simulator::new(&d.netlist);
        s.poke_reg(src, poke);
        script
            .iter()
            .map(|frame| {
                for &(i, v) in frame {
                    s.set_input(i, v);
                }
                let row: Vec<u64> = d.netlist.iter().map(|(id, _)| s.value(id)).collect();
                s.step();
                row
            })
            .collect()
    };
    let rows_a = run(val_a);
    let rows_b = run(val_b);
    // Taint run: instrumented netlist, source poked like run A, enable
    // high in cycle 0 only, no flush.
    let mut ts = Simulator::new(&inst.netlist);
    ts.poke_reg(src, val_a);
    ts.set_input(inst.flush_input, 0);
    let mut taint_rows: Vec<Vec<u64>> = Vec::with_capacity(opts.ift_cycles);
    for (t, frame) in script.iter().enumerate() {
        ts.set_input(en, u64::from(t == 0));
        for &(i, v) in frame {
            ts.set_input(i, v);
        }
        taint_rows.push(
            d.netlist
                .iter()
                .map(|(id, _)| ts.value(inst.taint_of(id)))
                .collect(),
        );
        ts.step();
    }
    for t in 0..opts.ift_cycles {
        for (ix, (id, _)) in d.netlist.iter().enumerate() {
            let differs = rows_a[t][ix] != rows_b[t][ix];
            let tainted = taint_rows[t][ix] != 0;
            if differs && !tainted {
                return CaseResult::Mismatch {
                    expected: "tainted (values diverge)".into(),
                    actual: "untainted".into(),
                    detail: format!(
                        "cycle {t}: {} is {:#x} vs {:#x} across the two runs but carries no taint",
                        d.netlist.display_name(id),
                        rows_a[t][ix],
                        rows_b[t][ix]
                    ),
                };
            }
            if tainted && !reach.contains(&id) {
                return CaseResult::Mismatch {
                    expected: "untainted (outside static closure)".into(),
                    actual: "tainted".into(),
                    detail: format!(
                        "cycle {t}: {} is outside taint_reachable yet tainted",
                        d.netlist.display_name(id)
                    ),
                };
            }
        }
    }
    CaseResult::Agree("ift-sound".into())
}

/// (g) Incremental pool vs. fresh solvers: a fleet of cover queries (the
/// design's cover plus up to seven other 1-bit signals) is answered twice
/// — once through one persistent pooled context that first solves the
/// whole fleet at a shallow bound and is then grown in place to the full
/// bound (exercising `begin_batch`, `ensure_bound`, the cover-activation
/// cache flush, and learnt-clause carry-over), and once through a fresh
/// one-shot checker per query at the full bound. The canonical verdict of
/// every fleet member must match, every `Reachable` leg must hand back a
/// replayable witness, and the pooled context must actually have been
/// reused rather than silently rebuilt.
fn oracle_incremental(d: &BuiltDesign, opts: &OracleOpts) -> CaseResult {
    let mut fleet: Vec<SignalId> = vec![d.cover];
    for (id, _) in d.netlist.iter() {
        if fleet.len() >= 8 {
            break;
        }
        if id != d.cover && d.netlist.width(id) == 1 {
            fleet.push(id);
        }
    }
    let cfg = |bound| McConfig {
        bound,
        bound_is_complete: true,
        try_induction: false,
        ..Default::default()
    };
    // Reference leg: a fresh solver per query at the full bound.
    let fresh: Vec<String> = fleet
        .iter()
        .map(|&c| {
            let mut chk = Checker::new(&d.netlist, cfg(opts.bound));
            incremental_verdict(d, c, &chk.check_cover(c, &[]))
        })
        .collect();
    // Pooled leg: one persistent context answers the whole fleet at the
    // shallow bound, then again at the full bound after an in-place
    // extension. Tickets are handed out in query order.
    let pool = SolverPool::new();
    let key = PoolKey::reset(0x1ec5_0000 ^ d.netlist.len() as u64);
    let shallow = (opts.bound / 2).max(1);
    let build = || Checker::new(&d.netlist, cfg(0));
    let mut ticket = 0usize;
    for &c in &fleet {
        let mut ctx = pool.checkout(key, ticket, shallow, build);
        ticket += 1;
        let _ = ctx.check_cover(c, &[]);
    }
    let mut reused = true;
    let pooled: Vec<String> = fleet
        .iter()
        .map(|&c| {
            let mut ctx = pool.checkout(key, ticket, opts.bound, build);
            ticket += 1;
            reused &= ctx.stats().ctx_reused > 0;
            incremental_verdict(d, c, &ctx.check_cover(c, &[]))
        })
        .collect();
    for ((&c, fresh_v), pooled_v) in fleet.iter().zip(&fresh).zip(&pooled) {
        if fresh_v != pooled_v {
            return CaseResult::Mismatch {
                expected: format!("fresh:{fresh_v}"),
                actual: format!("pooled:{pooled_v}"),
                detail: format!(
                    "cover {} at bound {}: the pooled context disagrees with a fresh solver",
                    d.netlist.display_name(c),
                    opts.bound
                ),
            };
        }
    }
    if !reused {
        return CaseResult::Mismatch {
            expected: "pooled context reused across the fleet".into(),
            actual: "context was rebuilt".into(),
            detail: "a full-bound checkout reported ctx_reused == 0".into(),
        };
    }
    let reachable = pooled.iter().filter(|v| v.as_str() == "reachable").count();
    CaseResult::Agree(format!("fleet={} reachable={reachable}", fleet.len()))
}

/// Canonical fleet-member verdict: `Reachable` must replay (the firing
/// frame is folded out so a shallow-then-deep context with a different
/// but valid witness still compares equal).
fn incremental_verdict(d: &BuiltDesign, cover: SignalId, outcome: &Outcome) -> String {
    match outcome {
        Outcome::Reachable(trace) => match replay_witness(&d.netlist, trace, cover, None) {
            Ok(_) => "reachable".to_string(),
            Err(why) => format!("reachable(bad-witness: {why})"),
        },
        _ => outcome_label(outcome),
    }
}
