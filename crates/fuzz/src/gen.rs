//! Seeded random netlist generation.
//!
//! Designs are described by a [`Genome`] — a flat op list with
//! modulo-indexed operands — and *built* by [`build`], which is total:
//! every genome, including any sublist produced by the shrinker, yields a
//! well-formed, lint-clean netlist. Robustness comes from three rules:
//!
//! * operand references are taken modulo the wires built so far, so
//!   deleting an op never dangles a reference;
//! * operand widths are adapted with zero-extension / truncation, so no
//!   width mismatch can occur;
//! * every wire not consumed by another cell is folded (via `red_xor`)
//!   into a single named `out` root, so no logic is dead, every input is
//!   read, and every register is observed.
//!
//! The single 1-bit `cover` signal — an equality test against a genome
//! constant — is the reachability target every oracle queries.

use netlist::lint::{LintContext, LintReport, Linter};
use netlist::{Builder, Netlist, SignalId, Wire};
use prng::Rng;

/// Size knobs for [`sample_genome`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Upper bound on combinational cell ops sampled.
    pub max_cells: usize,
    /// Upper bound on registers sampled (at least one is always sampled).
    pub max_regs: usize,
    /// Upper bound on inputs sampled (at least one is always sampled).
    pub max_inputs: usize,
    /// Upper bound on declared signal widths, clamped to `1..=6`.
    pub max_width: u8,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            max_cells: 24,
            max_regs: 3,
            max_inputs: 3,
            max_width: 4,
        }
    }
}

/// One generation step. Operand fields are raw indices interpreted modulo
/// the wire pool at build time (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenOp {
    /// Declare an input of the given width.
    Input { width: u8 },
    /// Declare a register of the given width and (masked) reset value.
    Reg { width: u8, init: u64 },
    /// A one-operand cell; `op` selects among not/neg/red_or/red_and/red_xor.
    Unary { op: u32, a: u32 },
    /// A two-operand cell; `op` selects among the binary builder ops.
    Binary { op: u32, a: u32, b: u32 },
    /// A 2:1 mux; `s` selects the (1-bit) select wire.
    Mux { s: u32, a: u32, b: u32 },
    /// Extract one bit of a wire.
    Bit { a: u32, bit: u32 },
    /// Concatenate two wires (operands truncated so the result stays ≤ 8 bits).
    Concat { a: u32, b: u32 },
}

/// A complete design description: op list, register next-state choices,
/// and the cover condition. Everything an oracle needs replays from this
/// plus nothing else — repro files serialize exactly this struct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Genome {
    /// Ops applied in order.
    pub ops: Vec<GenOp>,
    /// Raw next-state wire choice for the k-th register (`k % nexts.len()`).
    pub nexts: Vec<u32>,
    /// Raw index of the wire the cover condition observes.
    pub cover_sel: u32,
    /// Constant the cover condition compares against (masked to the
    /// observed width, capped at 3 bits).
    pub cover_cmp: u64,
}

/// A built genome: the netlist plus the handles and size facts the
/// oracles need.
pub struct BuiltDesign {
    /// The finished netlist (guaranteed lint-clean, see [`lint`]).
    pub netlist: Netlist,
    /// The 1-bit reachability target.
    pub cover: SignalId,
    /// The fold-of-everything observation root.
    pub out: SignalId,
    /// Total input bits (brute-force enumeration cost driver).
    pub input_bits: u32,
    /// Total register bits (state-space size driver).
    pub reg_bits: u32,
}

/// Samples a genome of roughly `cfg`-sized proportions.
pub fn sample_genome(rng: &mut Rng, cfg: &GenConfig) -> Genome {
    let max_w = cfg.max_width.clamp(1, 6);
    let width = |rng: &mut Rng| 1 + rng.range(0, max_w as u64) as u8;
    let n_inputs = 1 + rng.range(0, cfg.max_inputs.max(1) as u64) as usize;
    let n_regs = 1 + rng.range(0, cfg.max_regs.max(1) as u64) as usize;
    let n_cells = 2 + rng.range(0, cfg.max_cells.max(2) as u64) as usize;
    let mut ops = Vec::with_capacity(n_inputs + n_regs + n_cells);
    for _ in 0..n_inputs {
        let w = width(rng);
        ops.push(GenOp::Input { width: w });
    }
    for _ in 0..n_regs {
        let w = width(rng);
        ops.push(GenOp::Reg {
            width: w,
            init: rng.next_u64() & netlist::mask(w),
        });
    }
    for _ in 0..n_cells {
        let a = rng.next_u32();
        let b = rng.next_u32();
        ops.push(match rng.range(0, 8) {
            0 => GenOp::Unary {
                op: rng.next_u32(),
                a,
            },
            1..=4 => GenOp::Binary {
                op: rng.next_u32(),
                a,
                b,
            },
            5 => GenOp::Mux {
                s: rng.next_u32(),
                a,
                b,
            },
            6 => GenOp::Bit { a, bit: b },
            _ => GenOp::Concat { a, b },
        });
    }
    Genome {
        ops,
        nexts: (0..n_regs).map(|_| rng.next_u32()).collect(),
        cover_sel: rng.next_u32(),
        cover_cmp: rng.next_u64(),
    }
}

/// Adapts `w` to exactly `target` bits (identity when already there).
fn fit(b: &mut Builder, w: Wire, target: u8) -> Wire {
    use std::cmp::Ordering::*;
    match w.width.cmp(&target) {
        Equal => w,
        Less => b.zext(w, target),
        Greater => b.trunc(w, target),
    }
}

/// Builds a genome into a netlist. Total: never fails, for any genome.
pub fn build(genome: &Genome) -> BuiltDesign {
    let mut b = Builder::new();
    // (wire, consumed-by-a-cell) pool, in creation order.
    let mut pool: Vec<(Wire, bool)> = Vec::new();
    let mut regs: Vec<Wire> = Vec::new();
    let mut n_inputs = 0usize;
    let pick = |pool: &mut Vec<(Wire, bool)>, ix: u32| -> Option<Wire> {
        if pool.is_empty() {
            return None;
        }
        let slot = ix as usize % pool.len();
        pool[slot].1 = true;
        Some(pool[slot].0)
    };
    for op in &genome.ops {
        let built = match *op {
            GenOp::Input { width } => {
                let w = width.clamp(1, 8);
                let wire = b.input(&format!("in{n_inputs}"), w);
                n_inputs += 1;
                Some(wire)
            }
            GenOp::Reg { width, init } => {
                let w = width.clamp(1, 8);
                let wire = b.reg(&format!("r{}", regs.len()), w, init & netlist::mask(w));
                regs.push(wire);
                Some(wire)
            }
            GenOp::Unary { op, a } => pick(&mut pool, a).map(|a| match op % 5 {
                0 => b.not(a),
                1 => b.neg(a),
                2 => b.red_or(a),
                3 => b.red_and(a),
                _ => b.red_xor(a),
            }),
            GenOp::Binary { op, a, b: bb } => match (pick(&mut pool, a), pick(&mut pool, bb)) {
                (Some(x), Some(y)) => {
                    let y = fit(&mut b, y, x.width);
                    Some(match op % 12 {
                        0 => b.and(x, y),
                        1 => b.or(x, y),
                        2 => b.xor(x, y),
                        3 => b.add(x, y),
                        4 => b.sub(x, y),
                        5 => b.mul(x, y),
                        6 => b.eq(x, y),
                        7 => b.ne(x, y),
                        8 => b.ult(x, y),
                        9 => b.ule(x, y),
                        10 => b.shl(x, y),
                        _ => b.shr(x, y),
                    })
                }
                _ => None,
            },
            GenOp::Mux { s, a, b: bb } => {
                match (pick(&mut pool, s), pick(&mut pool, a), pick(&mut pool, bb)) {
                    (Some(s), Some(x), Some(y)) => {
                        let s = fit(&mut b, s, 1);
                        let y = fit(&mut b, y, x.width);
                        Some(b.mux(s, x, y))
                    }
                    _ => None,
                }
            }
            GenOp::Bit { a, bit } => pick(&mut pool, a).map(|a| {
                let ix = (bit % a.width as u32) as u8;
                b.bit(a, ix)
            }),
            GenOp::Concat { a, b: bb } => match (pick(&mut pool, a), pick(&mut pool, bb)) {
                (Some(x), Some(y)) => {
                    let x = fit(&mut b, x, x.width.min(4));
                    let y = fit(&mut b, y, y.width.min(4));
                    Some(b.concat(x, y))
                }
                _ => None,
            },
        };
        if let Some(w) = built {
            pool.push((w, false));
        }
    }
    // Wire every register's next-state (L002). The pick deliberately does
    // NOT mark the source consumed: liveness (L006) flows *backward* from
    // the `out`/`cover` roots through live registers' next edges, so a
    // wire used only as a next-state source must still be folded into
    // `out` — otherwise an unread register and its whole next cone would
    // be dead logic.
    for (k, &reg) in regs.iter().enumerate() {
        let raw = if genome.nexts.is_empty() {
            k as u32
        } else {
            genome.nexts[k % genome.nexts.len()]
        };
        let src = if pool.is_empty() {
            reg
        } else {
            pool[raw as usize % pool.len()].0
        };
        let src = fit(&mut b, src, reg.width);
        b.set_next(reg, src).expect("widths were fitted");
    }
    // Cover: equality of a (≤3-bit view of a) pool wire against a constant.
    let cover = match pick(&mut pool, genome.cover_sel) {
        Some(w) => {
            let w = fit(&mut b, w, w.width.min(3));
            let cmp = genome.cover_cmp & netlist::mask(w.width);
            b.eq_const(w, cmp)
        }
        None => b.zero(),
    };
    let cover = b.name(cover, "cover");
    // Fold every unconsumed wire into one named root (L003/L006).
    let mut acc: Option<Wire> = None;
    let loose: Vec<Wire> = pool
        .iter()
        .filter(|&&(_, consumed)| !consumed)
        .map(|&(w, _)| w)
        .collect();
    for w in loose {
        let bit = if w.width == 1 { w } else { b.red_xor(w) };
        acc = Some(match acc {
            Some(a) => b.xor(a, bit),
            None => bit,
        });
    }
    let out = acc.unwrap_or_else(|| b.zero());
    let out = b.name(out, "out");
    let netlist = b.finish().expect("generated netlists are well-formed");
    let input_bits = netlist
        .inputs()
        .iter()
        .map(|&i| netlist.width(i) as u32)
        .sum();
    let reg_bits = netlist
        .regs()
        .iter()
        .map(|&r| netlist.width(r) as u32)
        .sum();
    BuiltDesign {
        netlist,
        cover: cover.id,
        out: out.id,
        input_bits,
        reg_bits,
    }
}

/// Runs the full lint suite over a built design with its two roots.
/// Generated designs must come back [`LintReport::is_clean`]; the fuzz
/// driver asserts this for every case.
pub fn lint(d: &BuiltDesign) -> LintReport {
    let cx = LintContext {
        netlist: &d.netlist,
        annotations: None,
        roots: vec![d.out, d.cover],
        strobes: vec![],
    };
    Linter::new().run(&cx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_designs_are_lint_clean_and_deterministic() {
        let cfg = GenConfig::default();
        for case in 0..200u64 {
            let mut rng = Rng::new(0x5eed_0000 + case);
            let g = sample_genome(&mut rng, &cfg);
            let d = build(&g);
            let report = lint(&d);
            assert!(
                report.is_clean(),
                "case {case} not lint-clean:\n{}",
                report.render()
            );
            // Same genome → identical netlist (build is a pure function).
            let d2 = build(&g);
            assert_eq!(d.netlist.len(), d2.netlist.len());
            assert_eq!(d.cover, d2.cover);
            assert!(d.reg_bits > 0, "at least one register is always sampled");
        }
    }

    #[test]
    fn build_is_total_on_shrunk_genomes() {
        let mut rng = Rng::new(77);
        let g = sample_genome(&mut rng, &GenConfig::default());
        // Every prefix/suffix truncation of the op list still builds and
        // lints clean — the property the shrinker relies on.
        for cut in 0..g.ops.len() {
            let mut sub = g.clone();
            sub.ops.remove(cut);
            let d = build(&sub);
            assert!(lint(&d).is_clean(), "removing op {cut} broke lint");
        }
        let empty = Genome {
            ops: vec![],
            nexts: vec![],
            cover_sel: 0,
            cover_cmp: 0,
        };
        let d = build(&empty);
        assert!(lint(&d).is_clean());
    }
}
