//! A deliberately tiny reference DPLL solver.
//!
//! This is the golden model for oracle (a): no watched literals, no
//! learning, no heuristics — just unit propagation by full clause scans
//! and chronological backtracking, simple enough to audit by eye. It is
//! step-capped so a pathological formula degrades to a *skipped* case
//! rather than a hang.

use sat::Lit;

/// Outcome of a capped DPLL run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DpllResult {
    /// Satisfiable; `model[v]` is the assignment of variable `v`.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

const UNASSIGNED: i8 = -1;

#[inline]
fn lit_val(assign: &[i8], l: Lit) -> i8 {
    let a = assign[l.var().index()];
    if a == UNASSIGNED {
        UNASSIGNED
    } else if l.is_pos() {
        a
    } else {
        1 - a
    }
}

/// Solves `clauses` over `num_vars` variables, spending at most `step_cap`
/// clause scans. Returns `None` when the cap is hit (caller should skip
/// the case). `bug` injects a mutated satisfaction comparison — the
/// deliberately seeded defect the differential oracle must catch — and is
/// only reachable through [`crate::SeededBug`].
pub fn solve(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    step_cap: u64,
    bug: bool,
) -> Option<DpllResult> {
    let mut assign = vec![UNASSIGNED; num_vars];
    // (var, value-tried, is-decision) in assignment order.
    let mut trail: Vec<(usize, bool, bool)> = Vec::new();
    let mut steps = 0u64;
    loop {
        // Unit propagation: rescan until a fixpoint or a conflict.
        let mut conflict = false;
        'propagate: loop {
            let mut changed = false;
            for clause in clauses {
                steps += 1;
                if steps > step_cap {
                    return None;
                }
                let mut unassigned: Option<Lit> = None;
                let mut n_unassigned = 0usize;
                let mut satisfied = false;
                for &l in clause {
                    match lit_val(&assign, l) {
                        // The seeded bug flips which polarity counts as
                        // satisfying, wrecking the verdict on purpose.
                        1 if !bug => satisfied = true,
                        0 if bug => satisfied = true,
                        UNASSIGNED => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                        _ => {}
                    }
                    if satisfied {
                        break;
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => {
                        conflict = true;
                        break 'propagate;
                    }
                    1 => {
                        let l = unassigned.expect("counted one unassigned literal");
                        assign[l.var().index()] = i8::from(l.is_pos());
                        trail.push((l.var().index(), l.is_pos(), false));
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                break;
            }
        }
        if conflict {
            // Chronological backtracking: undo to the newest decision with
            // an untried value.
            loop {
                match trail.pop() {
                    None => return Some(DpllResult::Unsat),
                    Some((v, _, false)) => assign[v] = UNASSIGNED,
                    Some((v, tried, true)) => {
                        // Flip: re-assign the opposite value as an implied
                        // (non-decision) entry so it is not flipped twice.
                        assign[v] = i8::from(!tried);
                        trail.push((v, !tried, false));
                        break;
                    }
                }
            }
            continue;
        }
        // Decide the lowest-index unassigned variable, `false` first.
        match assign.iter().position(|&a| a == UNASSIGNED) {
            Some(v) => {
                assign[v] = 0;
                trail.push((v, false, true));
            }
            None => {
                return Some(DpllResult::Sat(assign.iter().map(|&a| a == 1).collect()));
            }
        }
    }
}

/// True when `model` satisfies every clause — the internal consistency
/// check both solvers' Sat answers are held to.
pub fn model_satisfies(model: &[bool], clauses: &[Vec<Lit>]) -> bool {
    clauses
        .iter()
        .all(|c| c.iter().any(|&l| model[l.var().index()] == l.is_pos()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::{Lit, Solver, Var};

    fn lit(v: u32, pos: bool) -> Lit {
        let var = Var(v);
        if pos {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    #[test]
    fn trivial_formulas() {
        // (x0 | x1) & (!x0) => x1 must be true.
        let cls = vec![vec![lit(0, true), lit(1, true)], vec![lit(0, false)]];
        match solve(2, &cls, 10_000, false) {
            Some(DpllResult::Sat(m)) => {
                assert!(!m[0] && m[1]);
                assert!(model_satisfies(&m, &cls));
            }
            other => panic!("expected Sat, got {other:?}"),
        }
        // x0 & !x0 is unsat.
        let cls = vec![vec![lit(0, true)], vec![lit(0, false)]];
        assert_eq!(solve(1, &cls, 10_000, false), Some(DpllResult::Unsat));
        // Empty clause is unsat.
        let cls = vec![vec![]];
        assert_eq!(solve(0, &cls, 10_000, false), Some(DpllResult::Unsat));
    }

    #[test]
    fn agrees_with_cdcl_on_random_small_formulas() {
        prng::for_each_case("dpll-vs-cdcl", 0xD9_11, 150, |rng| {
            let n_vars = 1 + rng.range_usize(0, 8);
            let n_clauses = 1 + rng.range_usize(0, 24);
            let clauses: Vec<Vec<Lit>> = (0..n_clauses)
                .map(|_| {
                    let len = 1 + rng.range_usize(0, 3);
                    (0..len)
                        .map(|_| lit(rng.range(0, n_vars as u64) as u32, rng.flip()))
                        .collect()
                })
                .collect();
            let mut cdcl = Solver::new();
            for _ in 0..n_vars {
                cdcl.new_var();
            }
            let mut ok = true;
            for c in &clauses {
                ok &= cdcl.add_clause(c);
            }
            let cdcl_sat = ok && cdcl.solve().is_sat();
            match solve(n_vars, &clauses, 1_000_000, false) {
                Some(DpllResult::Sat(m)) => {
                    assert!(cdcl_sat, "DPLL Sat but CDCL Unsat");
                    assert!(model_satisfies(&m, &clauses));
                }
                Some(DpllResult::Unsat) => assert!(!cdcl_sat, "DPLL Unsat but CDCL Sat"),
                None => {}
            }
        });
    }

    #[test]
    fn step_cap_skips_rather_than_hangs() {
        let cls = vec![vec![lit(0, true), lit(1, true)]];
        assert_eq!(solve(2, &cls, 1, false), None);
    }
}
