//! Minimized-repro serialization and replay.
//!
//! A [`Repro`] is everything needed to re-run one failing oracle case
//! from nothing: the (shrunk) genome, the oracle, and the run
//! coordinates. The encoding is a single compact JSON line, so a repro
//! can live in a bug report, a commit message, or a CI log and replay
//! with `fuzz::replay` (or `synthlc-cli fuzz --seed`).

use crate::gen::{build, GenOp, Genome};
use crate::oracle::{run_oracle, CaseResult, OracleKind, OracleOpts};
use crate::SeededBug;
use jsonio::Json;

/// A self-contained, replayable record of one verdict mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Repro {
    /// Which oracle disagreed.
    pub oracle: OracleKind,
    /// The fuzz run's base seed.
    pub seed: u64,
    /// Case index within the run (the genome's generation coordinates).
    pub case: u64,
    /// BMC bound the oracles ran with.
    pub bound: u64,
    /// The minimized genome.
    pub genome: Genome,
    /// Reference engine's verdict at the time of capture.
    pub expected: String,
    /// Engine-under-test's verdict at the time of capture.
    pub actual: String,
    /// Free-form mismatch context.
    pub detail: String,
    /// Shrinker predicate calls spent minimizing.
    pub shrink_attempts: u64,
}

fn op_to_json(op: &GenOp) -> Json {
    let row = |v: Vec<u64>| Json::Arr(v.into_iter().map(Json::Int).collect());
    match *op {
        GenOp::Input { width } => row(vec![0, width as u64]),
        GenOp::Reg { width, init } => row(vec![1, width as u64, init]),
        GenOp::Unary { op, a } => row(vec![2, op as u64, a as u64]),
        GenOp::Binary { op, a, b } => row(vec![3, op as u64, a as u64, b as u64]),
        GenOp::Mux { s, a, b } => row(vec![4, s as u64, a as u64, b as u64]),
        GenOp::Bit { a, bit } => row(vec![5, a as u64, bit as u64]),
        GenOp::Concat { a, b } => row(vec![6, a as u64, b as u64]),
    }
}

fn op_from_json(j: &Json) -> Option<GenOp> {
    let row = j.as_arr()?;
    let f = |ix: usize| row.get(ix).and_then(Json::as_u64);
    Some(match f(0)? {
        0 => GenOp::Input {
            width: u8::try_from(f(1)?).ok()?,
        },
        1 => GenOp::Reg {
            width: u8::try_from(f(1)?).ok()?,
            init: f(2)?,
        },
        2 => GenOp::Unary {
            op: f(1)? as u32,
            a: f(2)? as u32,
        },
        3 => GenOp::Binary {
            op: f(1)? as u32,
            a: f(2)? as u32,
            b: f(3)? as u32,
        },
        4 => GenOp::Mux {
            s: f(1)? as u32,
            a: f(2)? as u32,
            b: f(3)? as u32,
        },
        5 => GenOp::Bit {
            a: f(1)? as u32,
            bit: f(2)? as u32,
        },
        6 => GenOp::Concat {
            a: f(1)? as u32,
            b: f(2)? as u32,
        },
        _ => return None,
    })
}

impl Repro {
    /// The repro as a JSON value (embedded verbatim in fuzz reports).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("v".into(), Json::Int(1)),
            ("kind".into(), Json::Str("fuzz-repro".into())),
            ("oracle".into(), Json::Str(self.oracle.label().into())),
            ("seed".into(), Json::Int(self.seed)),
            ("case".into(), Json::Int(self.case)),
            ("bound".into(), Json::Int(self.bound)),
            (
                "genome".into(),
                Json::Obj(vec![
                    (
                        "ops".into(),
                        Json::Arr(self.genome.ops.iter().map(op_to_json).collect()),
                    ),
                    (
                        "nexts".into(),
                        Json::Arr(
                            self.genome
                                .nexts
                                .iter()
                                .map(|&n| Json::Int(n as u64))
                                .collect(),
                        ),
                    ),
                    ("cover_sel".into(), Json::Int(self.genome.cover_sel as u64)),
                    ("cover_cmp".into(), Json::Int(self.genome.cover_cmp)),
                ]),
            ),
            ("expected".into(), Json::Str(self.expected.clone())),
            ("actual".into(), Json::Str(self.actual.clone())),
            ("detail".into(), Json::Str(self.detail.clone())),
            ("shrink_attempts".into(), Json::Int(self.shrink_attempts)),
        ])
    }

    /// One-line serialization.
    pub fn encode(&self) -> String {
        self.to_json().render_compact()
    }

    /// Parses a serialized repro; `None` on any malformation (wrong
    /// version, unknown oracle, truncated or corrupt tail).
    pub fn decode(s: &str) -> Option<Self> {
        Self::from_json(&Json::parse(s).ok()?)
    }

    /// Parses a repro out of an already-parsed JSON value.
    pub fn from_json(j: &Json) -> Option<Self> {
        if j.field("v")?.as_u64()? != 1 || j.field("kind")?.as_str()? != "fuzz-repro" {
            return None;
        }
        let g = j.field("genome")?;
        let genome = Genome {
            ops: g
                .field("ops")?
                .as_arr()?
                .iter()
                .map(op_from_json)
                .collect::<Option<Vec<_>>>()?,
            nexts: g
                .field("nexts")?
                .as_arr()?
                .iter()
                .map(|n| n.as_u64().map(|v| v as u32))
                .collect::<Option<Vec<_>>>()?,
            cover_sel: g.field("cover_sel")?.as_u64()? as u32,
            cover_cmp: g.field("cover_cmp")?.as_u64()?,
        };
        Some(Repro {
            oracle: OracleKind::from_label(j.field("oracle")?.as_str()?)?,
            seed: j.field("seed")?.as_u64()?,
            case: j.field("case")?.as_u64()?,
            bound: j.field("bound")?.as_u64()?,
            genome,
            expected: j.field("expected")?.as_str()?.to_string(),
            actual: j.field("actual")?.as_str()?.to_string(),
            detail: j.field("detail")?.as_str()?.to_string(),
            shrink_attempts: j.field("shrink_attempts")?.as_u64()?,
        })
    }

    /// Re-runs the repro's oracle on its genome. Mismatch persistence is
    /// the whole point: a healthy engine pair returns `Agree`/`Skipped`,
    /// while the original defect (e.g. a [`SeededBug`] in a test build)
    /// reproduces the `Mismatch`.
    pub fn replay(&self, seeded_bug: Option<SeededBug>) -> CaseResult {
        let opts = OracleOpts {
            bound: self.bound as usize,
            seeded_bug,
            ..Default::default()
        };
        run_oracle(self.oracle, &build(&self.genome), &opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{sample_genome, GenConfig};
    use prng::Rng;

    fn sample_repro() -> Repro {
        let mut rng = Rng::new(0xabcd);
        Repro {
            oracle: OracleKind::Bmc,
            seed: 7,
            case: 3,
            bound: 4,
            genome: sample_genome(&mut rng, &GenConfig::default()),
            expected: "reachable@2".into(),
            actual: "unreachable".into(),
            detail: "brute-force fires the cover at frame 2".into(),
            shrink_attempts: 17,
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let r = sample_repro();
        let line = r.encode();
        let back = Repro::decode(&line).expect("decodes");
        assert_eq!(back, r);
        assert_eq!(back.encode(), line, "encode∘decode∘encode is identity");
    }

    #[test]
    fn corrupt_tail_is_rejected() {
        let line = sample_repro().encode();
        // Truncation anywhere in the tail must fail cleanly, never panic
        // or mis-parse.
        for cut in (line.len() - 40)..line.len() {
            assert_eq!(Repro::decode(&line[..cut]), None, "cut at {cut}");
        }
        // Trailing garbage is also a corrupt tail.
        assert_eq!(Repro::decode(&format!("{line}garbage")), None);
        // Unknown oracle labels are rejected.
        let bad = line.replace("\"bmc\"", "\"warp\"");
        assert_eq!(Repro::decode(&bad), None);
    }
}
