//! A tiny, dependency-free deterministic PRNG plus a mini property-test
//! loop.
//!
//! The container this reproduction builds in has no network access, so the
//! workspace cannot pull `rand`/`proptest` from crates.io. Everything that
//! previously used those crates — randomized conformance tests, the
//! SC-Safe empirical sweep, property-style cross-checks — now runs on this
//! module: a SplitMix64 generator (fixed seeds, identical streams on every
//! platform) and [`for_each_case`], a bare-bones `proptest!` replacement
//! that reports the failing case index so a reproduction is one seed away.
//!
//! # Examples
//!
//! ```
//! let mut rng = prng::Rng::new(42);
//! let a = rng.next_u64();
//! let b = rng.range(0, 10); // 0 <= b < 10
//! assert!(b < 10);
//! assert_ne!(a, rng.next_u64());
//! ```

/// A SplitMix64 pseudo-random generator.
///
/// Deterministic, `Copy`-cheap, passes BigCrush for the bit-mixing uses
/// here. Not cryptographic.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        // Multiply-shift rejection-free mapping; bias is < 2^-32 for the
        // small ranges used in tests.
        let span = hi - lo;
        lo + self.next_u64() % span
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// A random byte.
    pub fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// A random bool.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Runs `cases` independent random test cases, each with its own seeded
/// generator, panicking with the failing case's seed on the first failure.
///
/// The body receives the per-case [`Rng`]. A failing case prints
/// `case <i> (seed <s>)`, so the exact case replays with
/// `body(&mut Rng::new(s))`.
pub fn for_each_case(name: &str, base_seed: u64, cases: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        // Decorrelate per-case streams: seed through one extra mix round.
        let seed = Rng::new(base_seed ^ (case.wrapping_mul(0x2545_f491_4f6c_dd1d))).next_u64();
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property `{name}` failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            let v = r.range(3, 9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng::new(2);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn for_each_case_reports_failures() {
        let caught = std::panic::catch_unwind(|| {
            for_each_case("always_fails", 1, 4, |_| panic!("boom"));
        });
        assert!(caught.is_err());
    }
}
