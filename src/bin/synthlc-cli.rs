//! `synthlc-cli`: the command-line front end of the reproduction.
//!
//! ```text
//! synthlc-cli pls    <design>                 # §V-B1 DUV PL reachability
//! synthlc-cli paths  <design> <instr> [opts]  # RTL2MµPATH for one instruction
//! synthlc-cli leak   <design> <instr> [opts]  # SynthLC signatures + contracts
//! synthlc-cli check  <file.nl> [opts]         # frontend static analysis
//! synthlc-cli lint   [<design>|all]           # static-analysis lint suite
//! synthlc-cli fuzz   [opts]                   # differential-oracle fuzzing
//! synthlc-cli sat    <file.cnf>... [--stats]  # solve DIMACS formulas
//!                    [--incremental]          # ...through one pooled solver
//! synthlc-cli serve  [opts]                   # JSONL verification daemon (§13)
//! synthlc-cli client <addr|port> <op> [args]  # submit one job to the daemon
//! synthlc-cli designs                         # list available designs
//!
//! designs: minicva6 | minicva6-mul | minicva6-op | hardened | tinycore | minicache
//! A `<design>` argument may also be a path to a `.nl` netlist file
//! ("bring your own design"): the file runs through the full frontend
//! (parse, resolve, typecheck, lint) before synthesis.
//! options: --slots 0,1   --bound N   --context any|nocf|solo   --budget N   --jobs N
//!          --deadline-secs N   --journal PATH   --resume PATH   --fault-rate F
//!          --retries N   --fail-on-undetermined   --lint   --deny-warnings
//!
//! Every synthesis command lints its design first and aborts on error-level
//! findings (`--deny-warnings` makes warnings fatal too; `--lint` prints the
//! report even when clean).
//!
//! Exit codes (paths/leak): 0 = every property decided; 2 = the run
//! completed but some jobs degraded to Undetermined (deadline, fault, or
//! caught panic; any undetermined at all under --fail-on-undetermined);
//! 1 = hard errors (bad arguments, lint failures, unusable journal).
//!
//! `check` runs the textual-netlist frontend on one `.nl` file:
//! lex/parse (E001–E002), name resolution (E003–E005), width/type
//! checking (E006–E013), lowering, and the L001–L009 lint suite.
//! --diag-json prints one JSON object per diagnostic; --emit prints the
//! canonical re-emission of a clean module. `check` and `lint` share one
//! exit contract: 0 = clean, 2 = warnings rejected by --deny-warnings,
//! 1 = errors.
//!
//! `fuzz` options: --seed S --cases N --max-cells N --bound N
//! --deadline-secs N --knob-sweep (sweep every solver heuristic
//! configuration inside the SAT oracle) --oracles a,b,c (restrict to a
//! subset of: sat, bmc, induction, reductions, ift, text). The report (JSON,
//! byte-deterministic per seed) goes to stdout. Exit codes: 0 = all
//! oracles agreed; 1 = cross-engine mismatch (minimized repros are in the
//! report); 2 = deadline truncated the run before any mismatch was found.
//!
//! `sat` follows the SAT-competition convention: prints `s SATISFIABLE` /
//! `s UNSATISFIABLE` plus `v` model lines, exits 10 / 20 (0 when a
//! `--budget` ran out first). `--stats` dumps solver counters to stderr.
//! ```
//!
//! Run via `cargo run --release --bin synthlc-cli -- <args>`.

use mc::{CancelToken, CheckStats, FaultPlan, JobStore};
use mupath::{
    synthesize_isa_with, ContextMode, EngineOptions, HarnessConfig, RobustOptions, SynthConfig,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use synthlc::{contracts, synthesize_leakage, Journal, LeakConfig, TxKind};
use uarch::{build_core, build_tiny, CoreConfig, Design};

fn design_by_name(name: &str) -> Option<Design> {
    Some(match name {
        "minicva6" => build_core(&CoreConfig::default()),
        "minicva6-mul" => build_core(&CoreConfig::cva6_mul()),
        "minicva6-op" => build_core(&CoreConfig::cva6_op()),
        "hardened" => build_core(&CoreConfig::hardened()),
        "tinycore" => build_tiny(),
        "minicache" => uarch::cache::build_cache(),
        _ => return None,
    })
}

/// Resolves a `<design>` argument: a built-in name, or a path to a `.nl`
/// netlist file ("bring your own design"). File-based designs go through
/// the full frontend (parse, resolve, typecheck, lower, lint); hard errors
/// abort here with the rendered report on stderr, while the surviving
/// report rides along so the caller can apply `--deny-warnings`/`--lint`.
fn load_design(spec: &str) -> Result<(Design, Option<netlist::text::CompileResult>), String> {
    if !spec.ends_with(".nl") && !std::path::Path::new(spec).is_file() {
        return design_by_name(spec)
            .map(|d| (d, None))
            .ok_or_else(|| format!("unknown design `{spec}` (not a built-in, not a file)"));
    }
    let src = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
    let (design, result) = uarch::frontend::parse_design(&src, spec);
    match design {
        Some(d) => Ok((d, Some(result))),
        None => {
            eprint!("{}", result.report.render_in(&result.source));
            Err(format!("{spec}: {}", result.report.summary()))
        }
    }
}

/// Applies the pre-synthesis gate to a design loaded from a `.nl` file,
/// whose frontend report was already computed by [`load_design`].
fn gate_file_report(
    result: &netlist::text::CompileResult,
    design_name: &str,
    deny_warnings: bool,
    verbose: bool,
) -> Result<(), String> {
    let failing = deny_warnings && !result.report.is_clean();
    if failing || verbose {
        eprint!("{}", result.report.render_in(&result.source));
    }
    if failing {
        Err(format!(
            "check failed for {design_name}: {}",
            result.report.summary()
        ))
    } else {
        Ok(())
    }
}

fn opcode_by_name(design: &Design, name: &str) -> Option<isa::Opcode> {
    design
        .isa
        .iter()
        .copied()
        .find(|o| o.mnemonic().eq_ignore_ascii_case(name))
}

#[derive(Debug)]
struct Opts {
    slots: Vec<usize>,
    bound: usize,
    context: ContextMode,
    budget: u64,
    jobs: usize,
    lint: bool,
    deny_warnings: bool,
    deadline_secs: Option<u64>,
    journal: Option<String>,
    resume: Option<String>,
    fault_rate: f64,
    retries: u32,
    fail_on_undetermined: bool,
}

fn parse_opts(args: &[String], design: &Design) -> Result<Opts, String> {
    let mut o = Opts {
        slots: vec![0, 1],
        bound: design.max_latency.min(16) + 8,
        context: if design.type_values.is_empty() {
            ContextMode::NoControlFlow
        } else {
            ContextMode::Any
        },
        budget: 2_000_000,
        jobs: 0,
        lint: false,
        deny_warnings: false,
        deadline_secs: None,
        journal: None,
        resume: None,
        fault_rate: 0.0,
        retries: 0,
        fail_on_undetermined: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--slots" => {
                o.slots = val("--slots")?
                    .split(',')
                    .map(|s| s.parse().map_err(|_| format!("bad slot `{s}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--bound" => {
                o.bound = val("--bound")?
                    .parse()
                    .map_err(|_| "bad --bound".to_owned())?;
            }
            "--budget" => {
                o.budget = val("--budget")?
                    .parse()
                    .map_err(|_| "bad --budget".to_owned())?;
            }
            "--jobs" => {
                o.jobs = val("--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs".to_owned())?;
            }
            "--lint" => o.lint = true,
            "--deny-warnings" => o.deny_warnings = true,
            "--deadline-secs" => {
                o.deadline_secs = Some(serve::parse_deadline_secs(&val("--deadline-secs")?)?);
            }
            "--journal" => o.journal = Some(val("--journal")?),
            "--resume" => o.resume = Some(val("--resume")?),
            "--fault-rate" => {
                o.fault_rate = serve::parse_fault_rate(&val("--fault-rate")?)?;
            }
            "--retries" => {
                o.retries = val("--retries")?
                    .parse()
                    .map_err(|_| "bad --retries".to_owned())?;
            }
            "--fail-on-undetermined" => o.fail_on_undetermined = true,
            "--context" => {
                o.context = match val("--context")?.as_str() {
                    "any" => ContextMode::Any,
                    "nocf" => ContextMode::NoControlFlow,
                    "solo" => ContextMode::Solo,
                    other => return Err(format!("unknown context `{other}`")),
                };
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

fn synth_cfg(o: &Opts) -> SynthConfig {
    SynthConfig {
        slots: o.slots.clone(),
        context: o.context,
        bound: o.bound,
        conflict_budget: Some(o.budget),
        max_shapes: 64,
    }
}

/// Assembles the robustness knobs from the CLI options: wall-clock
/// deadline, fault plan (seeded by `SYNTHLC_FAULT_SEED`), journal.
fn robust_opts(o: &Opts) -> Result<RobustOptions, String> {
    let journal: Option<Arc<dyn JobStore>> = match (&o.journal, &o.resume) {
        (Some(_), Some(_)) => {
            return Err("--journal and --resume are mutually exclusive".to_owned())
        }
        (Some(p), None) => Some(Arc::new(
            Journal::create(p).map_err(|e| format!("--journal {p}: {e}"))?,
        )),
        (None, Some(p)) => Some(Arc::new(
            Journal::resume(p).map_err(|e| format!("--resume {p}: {e}"))?,
        )),
        (None, None) => None,
    };
    Ok(RobustOptions {
        cancel: o
            .deadline_secs
            .map(|s| Arc::new(CancelToken::deadline_in(Duration::from_secs(s)))),
        faults: FaultPlan::new(FaultPlan::env_seed(), o.fault_rate),
        journal,
        retries: o.retries,
    })
}

/// Prints the one-line degradation summary and returns the exit code the
/// run has earned: 2 when any job degraded (or, under
/// `--fail-on-undetermined`, when any property at all went undetermined),
/// 0 otherwise. The `degraded:` prefix is reserved for runs that actually
/// carry a widened verdict — a run whose every retry recovered (and any
/// resumed-from-journal jobs) reports under a neutral `recovered:`
/// heading instead, so scripts grepping for `degraded:` see no false
/// positives.
fn degradation_exit(
    o: &Opts,
    stats: &CheckStats,
    degraded_jobs: u64,
    resumed_jobs: u64,
    retried_jobs: u64,
) -> ExitCode {
    if degraded_jobs > 0 || stats.undetermined > 0 {
        println!(
            "degraded: {degraded_jobs} job(s) [budget={} deadline={} panicked={} fault={}], \
             resumed: {resumed_jobs} job(s), retried: {retried_jobs} attempt(s)",
            stats.undet_budget, stats.undet_deadline, stats.undet_panicked, stats.undet_fault
        );
    } else if resumed_jobs > 0 || retried_jobs > 0 {
        println!("recovered: {resumed_jobs} resumed job(s), {retried_jobs} retry attempt(s)");
    }
    if stats.degraded() > 0
        || degraded_jobs > 0
        || (o.fail_on_undetermined && stats.undetermined > 0)
    {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// One-line learnt-database summary of the solver work behind a run
/// (tier gauges are live values from the last query; counters are
/// lifetime totals across all checkers the run absorbed). The reuse
/// block reports the incremental-solving economy: pooled contexts
/// checked out again instead of rebuilt, unrolling frames grown in
/// place vs. built from scratch, and learnt clauses alive at batch
/// handoff (see DESIGN.md §12).
fn solver_summary(stats: &CheckStats) -> String {
    format!(
        "solver: learnts {}/{}/{} (core/mid/local), {} binaries, \
         {} deleted, {} subsumed, {} strengthened, avg LBD {:.1} (max {}), \
         {} trail reuses ({} levels), reuse: {} ctx, {} frames extended \
         / {} rebuilt, {} learnts carried",
        stats.sat_learnt_core,
        stats.sat_learnt_mid,
        stats.sat_learnt_local,
        stats.sat_binary_clauses,
        stats.sat_clauses_deleted,
        stats.sat_subsumed,
        stats.sat_strengthened,
        stats.sat_avg_lbd(),
        stats.sat_max_lbd,
        stats.sat_trail_reuses,
        stats.sat_reused_levels,
        stats.ctx_reused,
        stats.frames_extended,
        stats.frames_rebuilt,
        stats.learnts_carried
    )
}

/// Lints one design; returns an error message when findings exceed the
/// acceptable severity (`Error` always; `Warning` too under
/// `deny_warnings`). Verbose mode prints the full report even when clean.
fn lint_one(design: &Design, deny_warnings: bool, verbose: bool) -> Result<(), String> {
    let report = uarch::lint_design(design);
    let failing = report.has_errors() || (deny_warnings && !report.is_clean());
    if failing || verbose {
        print!("{}", report.render());
        println!();
    }
    if failing {
        Err(format!(
            "lint failed for {}: {}",
            design.name,
            report.summary()
        ))
    } else {
        Ok(())
    }
}

fn cmd_lint(names: &[&str], deny_warnings: bool) -> Result<ExitCode, String> {
    let mut worst = 0u8;
    for name in names {
        let design = design_by_name(name).ok_or_else(|| format!("unknown design `{name}`"))?;
        println!("== {name} ==");
        let report = uarch::lint_design(&design);
        print!("{}", report.render());
        println!();
        worst = worst.max(report.exit_code(deny_warnings));
    }
    Ok(ExitCode::from(worst))
}

/// Runs the textual frontend on one `.nl` file (the `check` subcommand):
/// full pipeline plus lints, diagnostics rendered with source snippets
/// (or as JSON lines under `--diag-json`), the canonical re-emission on
/// stdout under `--emit`. Exit: 0 clean, 2 warnings under
/// `--deny-warnings`, 1 errors.
fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let mut path: Option<String> = None;
    let mut deny_warnings = false;
    let mut json = false;
    let mut emit = false;
    for a in args {
        match a.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--diag-json" => json = true,
            "--emit" => emit = true,
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_owned()),
            other => return Err(format!("unknown check option `{other}`")),
        }
    }
    let path = path.ok_or("`check` needs a .nl file path")?;
    let src = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let mut result = netlist::text::check(&src, &path);
    // Modules that declare a harness must also convert into a full
    // `Design` (resolving ISA mnemonics against the `isa` crate).
    if let Some(module) = &result.module {
        if !result.report.has_errors() && module.harness.is_some() {
            let mut extra = netlist::diag::Report::default();
            uarch::frontend::design_from_module(module, &mut extra);
            result.report.extend(extra);
        }
    }
    if json {
        print!("{}", result.report.to_json_lines(Some(&result.source)));
    } else if !result.report.is_clean() {
        eprint!("{}", result.report.render_in(&result.source));
    }
    let code = result.report.exit_code(deny_warnings);
    if code != 1 {
        if let (true, Some(module)) = (emit, &result.module) {
            print!(
                "{}",
                netlist::text::emit_module(&netlist::text::ModuleText {
                    name: &module.name,
                    netlist: &module.netlist,
                    annotations: module.annotations.as_ref(),
                    harness: module.harness.as_ref(),
                })
            );
        } else if let (false, 0, Some(module)) = (json, code, &result.module) {
            println!(
                "{path}: ok ({} nodes, {} flop bits, {})",
                module.netlist.len(),
                module.netlist.state_bits(),
                result.report.summary()
            );
        }
    }
    Ok(ExitCode::from(code))
}

fn cmd_pls(design: &Design, o: &Opts) {
    let report = mupath::duv_pl_reachability(design, &synth_cfg(o));
    println!("{} performing locations:", report.pls.len());
    for pl in report.pls.ids() {
        println!(
            "  {:<12} {}",
            report.pls.name(pl),
            if report.reachable[pl.index()] {
                "reachable"
            } else {
                "UNREACHABLE"
            }
        );
    }
    let s = report.stats;
    println!("({} properties, {:.2}s avg)", s.properties, s.avg_seconds());
}

fn cmd_paths(design: &Design, op: isa::Opcode, o: &Opts) -> Result<ExitCode, String> {
    let opts = EngineOptions {
        threads: o.jobs,
        budget_pool: None,
        robust: robust_opts(o)?,
    };
    let isa_synth = synthesize_isa_with(design, &[op], &synth_cfg(o), &opts);
    let r = &isa_synth.instrs[0];
    println!(
        "{op}: {} µPATH(s), complete = {}",
        r.paths.len(),
        r.complete
    );
    let harness = mupath::build_harness(
        design,
        &HarnessConfig {
            opcode: op,
            fetch_slot: o.slots[0],
            context: o.context,
        },
    );
    for (i, p) in r.concrete.iter().enumerate() {
        println!(
            "\nµPATH {i} (latency {} cycles):\n{}",
            p.latency(),
            p.render(&harness.pls)
        );
    }
    for d in &r.decisions {
        println!("decision: {}", d.describe(&harness.pls));
    }
    println!(
        "\n{} properties, {:.2}s avg, {:.1}% undetermined",
        r.stats.properties,
        r.stats.avg_seconds(),
        r.stats.undetermined_pct()
    );
    println!("{}", solver_summary(&isa_synth.stats));
    Ok(degradation_exit(
        o,
        &isa_synth.stats,
        isa_synth.degraded_jobs,
        isa_synth.resumed_jobs,
        isa_synth.retried_jobs,
    ))
}

fn cmd_leak(design: &Design, op: isa::Opcode, o: &Opts) -> Result<ExitCode, String> {
    let cfg = LeakConfig {
        mupath: synth_cfg(o),
        transmitters: design
            .isa
            .iter()
            .copied()
            .filter(|t| {
                matches!(
                    t,
                    isa::Opcode::Add
                        | isa::Opcode::Mul
                        | isa::Opcode::Div
                        | isa::Opcode::Lw
                        | isa::Opcode::Sw
                        | isa::Opcode::Beq
                        | isa::Opcode::Jalr
                )
            })
            .collect(),
        kinds: vec![
            TxKind::Intrinsic,
            TxKind::DynamicOlder,
            TxKind::DynamicYounger,
            TxKind::Static,
        ],
        bound: o.bound,
        conflict_budget: Some(o.budget),
        threads: o.jobs,
        slot_base: 0,
        max_sources: Some(3),
        coi: true,
        static_prune: true,
        budget_pool: None,
        robust: robust_opts(o)?,
    };
    let report = synthesize_leakage(design, &[op], &cfg);
    let mut stats = report.mupath_stats;
    stats.absorb(&report.ift_stats);
    println!("{}", solver_summary(&stats));
    let exit = degradation_exit(
        o,
        &stats,
        report.degraded_jobs,
        report.resumed_jobs,
        report.retried_jobs,
    );
    if report.signatures.is_empty() {
        println!("{op}: no leakage signatures (not a transponder, or no tagged decisions)");
        return Ok(exit);
    }
    println!("leakage signatures for {op}:");
    for s in &report.signatures {
        println!("  {}", s.render());
    }
    let c = contracts::derive_contracts(&report);
    println!("\n{}", contracts::render_table1(&c));
    Ok(exit)
}

/// Parses and runs the `fuzz` subcommand: seeded differential fuzzing of
/// the solver / model-checker / simulator / IFT stack (DESIGN.md §9).
fn cmd_fuzz(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = fuzz::FuzzConfig {
        cases: 64,
        ..Default::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--seed" => {
                cfg.seed = val("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_owned())?;
            }
            "--cases" => {
                cfg.cases = val("--cases")?
                    .parse()
                    .map_err(|_| "bad --cases".to_owned())?;
            }
            "--max-cells" => {
                cfg.gen.max_cells = val("--max-cells")?
                    .parse()
                    .map_err(|_| "bad --max-cells".to_owned())?;
            }
            "--bound" => {
                cfg.bound = val("--bound")?
                    .parse()
                    .map_err(|_| "bad --bound".to_owned())?;
            }
            "--deadline-secs" => {
                let secs = serve::parse_deadline_secs(&val("--deadline-secs")?)?;
                cfg.deadline = Some(Arc::new(CancelToken::deadline_in(Duration::from_secs(
                    secs,
                ))));
            }
            "--knob-sweep" => cfg.knob_sweep = true,
            "--oracles" => {
                cfg.oracles = val("--oracles")?
                    .split(',')
                    .map(|s| {
                        fuzz::OracleKind::from_label(s.trim()).ok_or_else(|| {
                            let known: Vec<&str> =
                                fuzz::OracleKind::ALL.iter().map(|k| k.label()).collect();
                            format!("unknown oracle `{s}` (known: {})", known.join(" "))
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown fuzz option `{other}`")),
        }
    }
    let report = fuzz::run_fuzz(&cfg);
    print!("{}", report.render());
    if report.has_mismatches() {
        for repro in &report.mismatches {
            eprintln!("repro: {}", repro.encode());
        }
        eprintln!(
            "error: {} cross-engine mismatch(es) — replay with `synthlc-cli fuzz --seed {}`",
            report.mismatches.len(),
            report.seed
        );
        return Ok(ExitCode::FAILURE);
    }
    if !report.completed {
        return Ok(ExitCode::from(2));
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses and runs the `sat` subcommand: solves one DIMACS CNF with the
/// CDCL core, printing the competition-style answer and model. Exit
/// codes follow the SAT-competition convention (10 = SAT, 20 = UNSAT,
/// 0 = undetermined, 1 = bad file / bad arguments). With
/// `--incremental`, several files are loaded into *one* persistent
/// solver — each file's clauses guarded by a private activation literal
/// and queried via `solve_assuming` — so learnt clauses accumulate
/// across the corpus exactly as they do in the pooled checker contexts;
/// verdicts per file must match the one-shot path.
fn cmd_sat(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut show_stats = false;
    let mut incremental = false;
    let mut budget: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stats" => show_stats = true,
            "--incremental" => incremental = true,
            "--budget" => {
                budget = Some(
                    it.next()
                        .ok_or("--budget needs a value")?
                        .parse()
                        .map_err(|_| "bad --budget".to_owned())?,
                );
            }
            other if !other.starts_with("--") => paths.push(other.to_owned()),
            other => return Err(format!("unknown sat option `{other}`")),
        }
    }
    if incremental {
        return sat_incremental(&paths, budget, show_stats);
    }
    if paths.len() > 1 {
        return Err("multiple DIMACS files need --incremental".into());
    }
    let path = paths.pop().ok_or("`sat` needs a DIMACS file path")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let cnf = sat::dimacs::parse_dimacs(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut solver = cnf.to_solver();
    solver.set_conflict_budget(budget);
    let result = solver.solve();
    println!("s {}", result.answer());
    if result.is_sat() {
        // DIMACS model lines: 1-based signed literals, 0-terminated.
        let mut line = String::from("v");
        for i in 0..cnf.num_vars {
            let v = sat::Var(i as u32);
            let positive = solver.value(v).unwrap_or(false);
            let tok = format!(" {}{}", if positive { "" } else { "-" }, i + 1);
            if line.len() + tok.len() > 78 {
                println!("{line}");
                line = String::from("v");
            }
            line.push_str(&tok);
        }
        println!("{line} 0");
    }
    if show_stats {
        let st = solver.stats();
        eprintln!(
            "c vars {} clauses {} conflicts {} propagations {} decisions {} restarts {}",
            cnf.num_vars,
            cnf.clauses.len(),
            st.conflicts,
            st.propagations,
            st.decisions,
            st.restarts
        );
        eprintln!(
            "c learnts {} (core {} mid {} local {}) binaries {} deleted {} \
             subsumed {} strengthened {} blocked-restarts {} avg-lbd {:.2} max-lbd {}",
            st.learnts,
            st.learnt_core,
            st.learnt_mid,
            st.learnt_local,
            st.binary_clauses,
            st.clauses_deleted,
            st.subsumed,
            st.strengthened,
            st.blocked_restarts,
            st.avg_lbd(),
            st.max_lbd
        );
    }
    Ok(sat_exit_code(result))
}

fn sat_exit_code(result: sat::SolveResult) -> ExitCode {
    match result {
        sat::SolveResult::Sat => ExitCode::from(10),
        sat::SolveResult::Unsat => ExitCode::from(20),
        sat::SolveResult::Unknown => ExitCode::SUCCESS,
    }
}

/// `sat --incremental`: the whole corpus through one pooled solver. Each
/// file's variables are mapped into a shared space and its clauses are
/// guarded by a fresh activation literal `a_i` (stored as `!a_i ∨ c`),
/// so `solve_assuming([a_i])` answers file `i` while clauses learned on
/// earlier files stay live — the CLI face of the checker's
/// assumption-based incremental discipline (DESIGN.md §12). One verdict
/// line per file; the exit code follows the SAT-competition convention
/// for the *last* file, so single-file invocations keep their one-shot
/// exit codes.
fn sat_incremental(
    paths: &[String],
    budget: Option<u64>,
    show_stats: bool,
) -> Result<ExitCode, String> {
    if paths.is_empty() {
        return Err("`sat --incremental` needs at least one DIMACS file path".into());
    }
    let mut solver = sat::Solver::new();
    let mut queries: Vec<(String, sat::Lit)> = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let cnf = sat::dimacs::parse_dimacs(&text).map_err(|e| format!("{path}: {e}"))?;
        let base: Vec<sat::Var> = (0..cnf.num_vars).map(|_| solver.new_var()).collect();
        let act = solver.new_var();
        for c in &cnf.clauses {
            let mut guarded = Vec::with_capacity(c.len() + 1);
            guarded.push(sat::Lit::neg(act));
            guarded.extend(
                c.iter()
                    .map(|l| sat::Lit::new(base[l.var().0 as usize], l.is_pos())),
            );
            solver.add_clause(&guarded);
        }
        queries.push((path.clone(), sat::Lit::pos(act)));
    }
    let mut last = sat::SolveResult::Unknown;
    for (path, act) in &queries {
        solver.set_conflict_budget(budget);
        last = solver.solve_assuming(&[*act]);
        println!("{path}: s {}", last.answer());
    }
    if show_stats {
        let st = solver.stats();
        eprintln!(
            "c pooled: {} files, {} vars, conflicts {} propagations {} \
             learnts {} (core {} mid {} local {})",
            queries.len(),
            solver.num_vars(),
            st.conflicts,
            st.propagations,
            st.learnts,
            st.learnt_core,
            st.learnt_mid,
            st.learnt_local
        );
    }
    Ok(sat_exit_code(last))
}

/// Parses and runs the `serve` subcommand: the long-lived verification
/// daemon (DESIGN.md §13). Blocks until SIGINT/SIGTERM or a client
/// `shutdown` request, then drains the queue and exits.
fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = serve::ServeConfig::default();
    let mut port = 0u16;
    let mut journal: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut fault_rate = 0.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--port" => {
                port = val("--port")?
                    .parse()
                    .map_err(|_| "bad --port".to_owned())?;
            }
            "--workers" => {
                cfg.workers = val("--workers")?
                    .parse()
                    .map_err(|_| "bad --workers".to_owned())?;
            }
            "--queue-cap" => {
                cfg.queue_cap = val("--queue-cap")?
                    .parse()
                    .map_err(|_| "bad --queue-cap".to_owned())?;
                if cfg.queue_cap == 0 {
                    return Err("--queue-cap must be at least 1 (a zero-capacity \
                                queue sheds every job)"
                        .into());
                }
            }
            "--retries" => {
                cfg.retries = val("--retries")?
                    .parse()
                    .map_err(|_| "bad --retries".to_owned())?;
            }
            "--deadline-secs" => {
                cfg.deadline_secs = Some(serve::parse_deadline_secs(&val("--deadline-secs")?)?);
            }
            "--fault-rate" => {
                fault_rate = serve::parse_fault_rate(&val("--fault-rate")?)?;
            }
            "--backoff-ms" => {
                cfg.backoff_ms = val("--backoff-ms")?
                    .parse()
                    .map_err(|_| "bad --backoff-ms".to_owned())?;
            }
            "--client-budget" => {
                cfg.client_budget = Some(
                    val("--client-budget")?
                        .parse()
                        .map_err(|_| "bad --client-budget".to_owned())?,
                );
            }
            "--journal" => journal = Some(val("--journal")?),
            "--resume" => resume = Some(val("--resume")?),
            other => return Err(format!("unknown serve option `{other}`")),
        }
    }
    if fault_rate > 0.0 {
        cfg.faults = mc::FaultPlan::new(mc::FaultPlan::env_seed(), fault_rate);
    }
    if journal.is_some() && resume.is_some() {
        return Err("--journal and --resume are exclusive: --resume replays an \
                    existing verdict journal, --journal starts a fresh one"
            .into());
    }
    let store = match (journal, resume) {
        (Some(p), None) => Some(Arc::new(
            serve::VerdictStore::create(&p)
                .map_err(|e| format!("cannot create journal {p}: {e}"))?,
        )),
        (None, Some(p)) => Some(Arc::new(
            serve::VerdictStore::resume(&p)
                .map_err(|e| format!("cannot resume journal {p}: {e}"))?,
        )),
        (None, None) => None,
        (Some(_), Some(_)) => unreachable!("rejected above"),
    };
    let code = serve::serve_tcp(cfg, store, port).map_err(|e| format!("serve failed: {e}"))?;
    Ok(ExitCode::from(code))
}

/// Parses and runs the `client` subcommand: submits one job (or a
/// `stats`/`shutdown` control request) to a running daemon and streams
/// its events to stdout. Exit code is the job's verdict exit.
fn cmd_client(args: &[String]) -> Result<ExitCode, String> {
    let addr_arg = args
        .first()
        .ok_or("`client` needs a daemon address (HOST:PORT, or a bare PORT for 127.0.0.1)")?;
    let addr = if addr_arg.contains(':') {
        addr_arg.clone()
    } else {
        format!("127.0.0.1:{addr_arg}")
    };
    let op_label = args
        .get(1)
        .ok_or("`client` needs an op (paths leak check fuzz stats shutdown)")?;
    let mut req = serve::Request::new(match op_label.as_str() {
        "paths" => serve::Op::Paths,
        "leak" => serve::Op::Leak,
        "check" => serve::Op::Check,
        "fuzz" => serve::Op::Fuzz,
        "stats" => serve::Op::Stats,
        "shutdown" => serve::Op::Shutdown,
        other => {
            return Err(format!(
                "unknown op `{other}` (known: paths leak check fuzz stats shutdown)"
            ))
        }
    });
    let mut rest = &args[2..];
    // `paths`/`leak` take positional <design> <instr> before flags.
    if matches!(req.op, serve::Op::Paths | serve::Op::Leak) {
        let design = rest
            .first()
            .ok_or_else(|| format!("`client {op_label}` needs a design name"))?;
        let instr = rest
            .get(1)
            .ok_or_else(|| format!("`client {op_label}` needs an instruction mnemonic"))?;
        req.design = Some(design.clone());
        req.instr = Some(instr.clone());
        rest = &rest[2..];
    }
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--id" => req.id = val("--id")?,
            "--client" => req.client = val("--client")?,
            "--bound" => {
                req.bound = Some(
                    val("--bound")?
                        .parse()
                        .map_err(|_| "bad --bound".to_owned())?,
                );
            }
            "--budget" => {
                req.budget = Some(
                    val("--budget")?
                        .parse()
                        .map_err(|_| "bad --budget".to_owned())?,
                );
            }
            "--seed" => {
                req.seed = val("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_owned())?;
            }
            "--cases" => {
                req.cases = val("--cases")?
                    .parse()
                    .map_err(|_| "bad --cases".to_owned())?;
            }
            "--source-file" => {
                let p = val("--source-file")?;
                req.source =
                    Some(std::fs::read_to_string(&p).map_err(|e| format!("cannot read {p}: {e}"))?);
            }
            other => return Err(format!("unknown client option `{other}`")),
        }
    }
    if req.op == serve::Op::Check && req.source.is_none() {
        return Err("`client check` needs --source-file <file.nl>".into());
    }
    let code = serve::run_client(&addr, &[req])
        .map_err(|e| format!("cannot reach daemon at {addr}: {e}"))?;
    Ok(ExitCode::from(code))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "designs" => {
            for d in [
                "minicva6",
                "minicva6-mul",
                "minicva6-op",
                "hardened",
                "tinycore",
                "minicache",
            ] {
                let design = design_by_name(d).expect("listed design builds");
                println!(
                    "{d:<14} {:>5} nodes {:>4} flop bits  {} µFSMs",
                    design.netlist.len(),
                    design.netlist.state_bits(),
                    design.annotations.ufsms.len()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "lint" => {
            let dname = args.get(1).map(String::as_str).unwrap_or("all");
            let deny = args.iter().any(|a| a == "--deny-warnings");
            let all = [
                "minicva6",
                "minicva6-mul",
                "minicva6-op",
                "hardened",
                "tinycore",
                "minicache",
            ];
            if dname == "all" {
                cmd_lint(&all, deny)
            } else {
                cmd_lint(&[dname], deny)
            }
        }
        "check" => cmd_check(&args[1..]),
        "fuzz" => cmd_fuzz(&args[1..]),
        "sat" => cmd_sat(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "client" => cmd_client(&args[1..]),
        "pls" | "paths" | "leak" => {
            let dname = args
                .get(1)
                .ok_or_else(|| format!("`{cmd}` needs a design name"))?;
            let (design, file_result) = load_design(dname)?;
            let gate = |o: &Opts| -> Result<(), String> {
                match &file_result {
                    Some(result) => gate_file_report(result, &design.name, o.deny_warnings, o.lint),
                    None => lint_one(&design, o.deny_warnings, o.lint),
                }
            };
            if cmd == "pls" {
                let o = parse_opts(&args[2..], &design)?;
                gate(&o)?;
                cmd_pls(&design, &o);
                return Ok(ExitCode::SUCCESS);
            }
            let iname = args
                .get(2)
                .ok_or_else(|| format!("`{cmd}` needs an instruction mnemonic"))?;
            let op = opcode_by_name(&design, iname)
                .ok_or_else(|| format!("`{iname}` is not implemented by {dname}"))?;
            let o = parse_opts(&args[3..], &design)?;
            gate(&o)?;
            if cmd == "paths" {
                cmd_paths(&design, op, &o)
            } else {
                cmd_leak(&design, op, &o)
            }
        }
        _ => {
            println!(
                "usage:\n  synthlc-cli designs\n  synthlc-cli lint [<design>|all] [--deny-warnings]\n  \
                 synthlc-cli check <file.nl> [--deny-warnings] [--diag-json] [--emit]\n  \
                 synthlc-cli pls <design> [opts]\n  \
                 synthlc-cli paths <design> <instr> [opts]\n  synthlc-cli leak <design> <instr> [opts]\n  \
                 synthlc-cli fuzz [--seed S] [--cases N] [--max-cells N] [--bound N] [--deadline-secs N] [--knob-sweep] [--oracles a,b]\n  \
                 synthlc-cli sat <file.cnf>... [--incremental] [--stats] [--budget N]  (exit 10 SAT / 20 UNSAT / 0 unknown)\n  \
                 synthlc-cli serve [--port P] [--workers N] [--queue-cap N] [--retries N]\n      \
                 [--deadline-secs N] [--fault-rate F] [--backoff-ms N] [--client-budget N]\n      \
                 [--journal PATH | --resume PATH]  (JSONL daemon; SIGINT drains and exits)\n  \
                 synthlc-cli client <addr|port> <op> [<design> <instr>] [--id I] [--client C]\n      \
                 [--bound N] [--budget N] [--seed S] [--cases N] [--source-file F.nl]\n      \
                 (ops: paths leak check fuzz stats shutdown; exit 75 = shed, resubmit)\n\
                 \ndesigns: minicva6 minicva6-mul minicva6-op hardened tinycore minicache\n\
                 (a <design> may also be a path to a .nl netlist file)\n\
                 opts: --slots 0,1  --bound N  --context any|nocf|solo  --budget N  --jobs N\n      \
                 --deadline-secs N (degrade, don't hang, past the wall clock)\n      \
                 --journal PATH (checkpoint verdicts)  --resume PATH (replay a journal)\n      \
                 --fault-rate F (inject faults, seed SYNTHLC_FAULT_SEED)\n      \
                 --retries N (re-run degraded jobs up to N times before the verdict stands)\n      \
                 --fail-on-undetermined (exit 2 on any undetermined outcome)\n      \
                 --lint (print lint report)  --deny-warnings (lint warnings are fatal)\n\
                 \nexit codes: 0 all decided; 2 degraded/undetermined; 1 hard error\n\
                 lint/check: 0 clean; 2 warnings under --deny-warnings; 1 errors"
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
