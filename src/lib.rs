//! Umbrella crate for the RTL2MµPATH + SynthLC reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so the `examples/` and
//! `tests/` directories at the repository root can exercise the whole stack.
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use ift;
pub use isa;
pub use mc;
pub use mupath;
pub use netlist;
pub use sat;
pub use sim;
pub use sva;
pub use synthlc;
pub use uarch;
pub use uhb;
