//! Fig. 1 reproduction (integration): the zero-skip multiplier creates two
//! µPATHs for MUL — an operand-dependent channel — while the hardened core
//! has exactly one. Cross-validated with the SC-Safe (Definition V.1)
//! simulation experiment.

use mupath::{synthesize_instr, SynthConfig};
use synthlc::scsafe::{check_sc_safe, SecretLocation};
use uarch::{build_core, CoreConfig};

#[test]
fn zero_skip_mul_has_two_paths_with_distinct_latencies() {
    let design = build_core(&CoreConfig::cva6_mul());
    let cfg = SynthConfig::solo(&design);
    let r = synthesize_instr(&design, isa::Opcode::Mul, &cfg);
    assert!(r.complete, "synthesis must complete");
    assert_eq!(r.paths.len(), 2, "fast (zero operand) and slow µPATHs");
    let mut lats: Vec<usize> = r.concrete.iter().map(|p| p.latency()).collect();
    lats.sort_unstable();
    assert_eq!(
        lats[1] - lats[0],
        3,
        "zero-skip saves slow-1 = 3 cycles in the mulU occupancy"
    );
    assert!(
        !r.decisions.is_empty(),
        "µPATH divergence yields decisions (§IV-B)"
    );
}

#[test]
fn hardened_core_mul_and_div_are_single_path() {
    let design = build_core(&CoreConfig::hardened());
    let cfg = SynthConfig::solo(&design);
    for op in [isa::Opcode::Mul, isa::Opcode::Div] {
        let r = synthesize_instr(&design, op, &cfg);
        assert!(r.complete);
        assert_eq!(
            r.paths.len(),
            1,
            "{op}: data-independent unit must have one µPATH in isolation"
        );
    }
}

#[test]
fn variable_latency_div_multi_path_even_solo() {
    let design = build_core(&CoreConfig::default());
    let cfg = SynthConfig::solo(&design);
    let r = synthesize_instr(&design, isa::Opcode::Div, &cfg);
    assert!(r.paths.len() > 1, "early-terminating divider: >1 µPATH");
}

/// A MUL whose rs1 is the secret: the zero-skip core leaks whether the
/// secret is zero through execution timing; the hardened core does not.
#[test]
fn sc_safe_confirms_zero_skip_timing_leak() {
    let program = isa::assemble(
        "addi r2, r0, 3\n\
         mul  r3, r1, r2\n\
         add  r2, r3, r3\n",
    )
    .unwrap();
    let leaky = build_core(&CoreConfig::cva6_mul());
    let res = check_sc_safe(&leaky, &program, SecretLocation::Reg(1), 0, 7, 3);
    assert!(res.violated, "zero vs non-zero secret changes the trace");

    let hardened = build_core(&CoreConfig::hardened());
    let res = check_sc_safe(&hardened, &program, SecretLocation::Reg(1), 0, 7, 3);
    assert!(!res.violated, "hardened multiplier is constant-time");
}

#[test]
fn sc_safe_div_leaks_magnitude_not_just_zero() {
    let program = isa::assemble(
        "addi r2, r0, 3\n\
         div  r3, r1, r2\n",
    )
    .unwrap();
    let design = build_core(&CoreConfig::default());
    // 3 vs 200: different significant-bit counts, different latency.
    let res = check_sc_safe(&design, &program, SecretLocation::Reg(1), 3, 200, 2);
    assert!(res.violated, "divider latency tracks dividend magnitude");
    // Same magnitude class: no observable difference.
    let res = check_sc_safe(&design, &program, SecretLocation::Reg(1), 200, 201, 2);
    assert!(
        !res.violated,
        "values in the same latency class are indistinguishable"
    );
}
