//! Integration tests for the static-analysis layer: randomized
//! cone-of-influence verdict preservation, golden lint checks for every
//! in-tree design, and reduction-equivalence of the SynthLC pipeline on
//! the cache DUV (COI + static taint prune on vs off).

use mc::{Checker, CoiSlice, Elab, McConfig};
use netlist::{Builder, Netlist, Wire};
use std::sync::Arc;

/// Builds a random 8-bit-datapath netlist: a few inputs, a few registers
/// with random next-state logic drawn from a shared expression pool, and
/// `n_props` named 1-bit property signals `prop<i>` comparing random
/// wires against random constants.
fn random_netlist(rng: &mut prng::Rng, n_props: usize) -> (Netlist, Vec<String>) {
    let mut b = Builder::new();
    let mut wires: Vec<Wire> = Vec::new();
    for i in 0..4 {
        wires.push(b.input(&format!("in{i}"), 8));
    }
    let mut regs: Vec<Wire> = Vec::new();
    for i in 0..6 {
        let r = b.reg(&format!("r{i}"), 8, rng.range(0, 16));
        regs.push(r);
        wires.push(r);
    }
    for _ in 0..30 {
        let a = wires[rng.range_usize(0, wires.len())];
        let c = wires[rng.range_usize(0, wires.len())];
        let w = match rng.range(0, 6) {
            0 => b.add(a, c),
            1 => b.xor(a, c),
            2 => b.and(a, c),
            3 => b.sub(a, c),
            4 => {
                let sel = b.bit(a, 0);
                b.mux(sel, c, a)
            }
            _ => b.or(a, c),
        };
        wires.push(w);
    }
    for &r in &regs {
        let nx = wires[rng.range_usize(0, wires.len())];
        b.set_next(r, nx).unwrap();
    }
    let mut props = Vec::new();
    for i in 0..n_props {
        let w = wires[rng.range_usize(0, wires.len())];
        let p = b.eq_const(w, rng.range(0, 40));
        let name = format!("prop{i}");
        b.name(p, &name);
        props.push(name);
    }
    (b.finish().unwrap(), props)
}

fn outcome_kind(o: &mc::Outcome) -> &'static str {
    if o.is_reachable() {
        "reachable"
    } else if o.is_unreachable() {
        "unreachable"
    } else {
        "undetermined"
    }
}

/// Checks every property of a random netlist twice — once on a plain
/// checker, once on a COI-sliced one — and demands identical verdicts.
fn assert_coi_preserves_verdicts(rng: &mut prng::Rng, cfg: McConfig) -> bool {
    let (nl, props) = random_netlist(rng, 3);
    let elab = Arc::new(Elab::new(&nl));
    let mut any_proper_slice = false;
    for name in &props {
        let p = nl.find(name).unwrap();
        let coi = Arc::new(CoiSlice::compute(&nl, &[p]));
        any_proper_slice |= coi.kept_nodes < coi.total_nodes;
        let mut plain = Checker::with_elab(&nl, cfg, &[], Arc::clone(&elab));
        let mut sliced = Checker::with_coi(&nl, cfg, &[], Arc::clone(&elab), Some(coi));
        let a = plain.check_cover(p, &[]);
        let b = sliced.check_cover(p, &[]);
        assert_eq!(
            outcome_kind(&a),
            outcome_kind(&b),
            "COI slicing changed the verdict of {name}"
        );
    }
    any_proper_slice
}

/// Randomized BMC equivalence: COI-sliced bounded model checking returns
/// the same verdict as the unsliced checker on every property.
#[test]
fn coi_preserves_bmc_verdicts_on_random_netlists() {
    let cfg = McConfig {
        bound: 10,
        ..Default::default()
    };
    let mut proper_slices = 0u32;
    prng::for_each_case("coi_bmc_verdicts", 0x05ee_dc01, 12, |rng| {
        if assert_coi_preserves_verdicts(rng, cfg) {
            proper_slices += 1;
        }
    });
    // Non-vacuity: the generator must exercise real slicing, not just
    // whole-netlist cones.
    assert!(proper_slices > 0, "no case produced a strict slice");
}

/// Randomized k-induction equivalence: with an incomplete bound and
/// induction enabled, sliced and unsliced checkers still agree (including
/// on inductive `Unreachable` proofs).
#[test]
fn coi_preserves_kinduction_verdicts_on_random_netlists() {
    let cfg = McConfig {
        bound: 5,
        bound_is_complete: false,
        try_induction: true,
        induction_depth: 4,
        ..Default::default()
    };
    prng::for_each_case("coi_kinduction_verdicts", 0x05ee_dc02, 8, |rng| {
        assert_coi_preserves_verdicts(rng, cfg);
    });
}

/// Golden lint check: every in-tree design passes the full lint suite with
/// zero errors and zero warnings (the bar `scripts/ci.sh` enforces via
/// `synthlc-cli lint all --deny-warnings`).
#[test]
fn all_designs_lint_clean() {
    let designs = [
        uarch::build_core(&uarch::CoreConfig::default()),
        uarch::build_core(&uarch::CoreConfig::cva6_mul()),
        uarch::build_core(&uarch::CoreConfig::cva6_op()),
        uarch::build_core(&uarch::CoreConfig::hardened()),
        uarch::build_tiny(),
        uarch::cache::build_cache(),
    ];
    for design in &designs {
        let report = uarch::lint_design(design);
        assert!(
            report.is_clean(),
            "{} has lint findings:\n{}",
            design.name,
            report.render()
        );
    }
}

/// Reduction equivalence on the cache DUV: running SynthLC with COI and
/// the static taint prune enabled yields a byte-identical report to the
/// unreduced run, and the prune discharges at least one pair statically.
#[test]
fn cache_leakage_reductions_preserve_report() {
    use mupath::{ContextMode, SynthConfig};
    use synthlc::{synthesize_leakage, LeakConfig, LeakageReport, TxKind};

    fn fingerprint(r: &LeakageReport) -> String {
        let sigs: Vec<String> = r.signatures.iter().map(|s| s.render()).collect();
        format!(
            "sigs={sigs:?} cand={:?} transponders={:?} transmitters={:?} \
             mupath=({},{},{},{}) ift=({},{},{},{})",
            r.candidate_transponders,
            r.transponders,
            r.transmitters,
            r.mupath_stats.properties,
            r.mupath_stats.reachable,
            r.mupath_stats.unreachable,
            r.mupath_stats.undetermined,
            r.ift_stats.properties,
            r.ift_stats.reachable,
            r.ift_stats.unreachable,
            r.ift_stats.undetermined,
        )
    }

    let design = uarch::cache::build_cache();
    let base = LeakConfig {
        mupath: SynthConfig {
            slots: vec![2],
            context: ContextMode::Any,
            bound: 24,
            conflict_budget: Some(2_000_000),
            max_shapes: 48,
        },
        transmitters: vec![isa::Opcode::Lw],
        kinds: vec![TxKind::Static],
        bound: 24,
        conflict_budget: Some(2_000_000),
        threads: 1,
        budget_pool: None,
        slot_base: 1,
        max_sources: Some(1),
        coi: false,
        static_prune: false,
        robust: Default::default(),
    };
    let plain = synthesize_leakage(&design, &[isa::Opcode::Lw], &base);
    let reduced_cfg = LeakConfig {
        coi: true,
        static_prune: true,
        ..base
    };
    let reduced = synthesize_leakage(&design, &[isa::Opcode::Lw], &reduced_cfg);

    assert_eq!(
        fingerprint(&plain),
        fingerprint(&reduced),
        "reductions changed the leakage report"
    );
    assert_eq!(plain.ift_stats.discharged_static, 0);
    assert!(
        reduced.ift_stats.coi_bits_after < reduced.ift_stats.coi_bits_before,
        "COI produced no reduction on the cache DUV"
    );
}
