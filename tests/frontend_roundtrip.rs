//! Golden `.nl` files for every in-tree design (`examples/*.nl`).
//!
//! Each design must (a) emit exactly the checked-in golden text, and
//! (b) survive the full frontend — parse, resolve, typecheck, lower,
//! lint — with zero diagnostics, reproducing the in-memory netlist
//! structurally and re-emitting byte-identical text (the canonical-form
//! fixpoint the fuzz `text` oracle checks on random designs).
//!
//! Regenerate the goldens after an intentional emitter/grammar change:
//!
//! ```text
//! SYNTHLC_BLESS=1 cargo test --test frontend_roundtrip
//! ```

use std::path::PathBuf;

use uarch::{build_core, build_tiny, CoreConfig, Design};

fn all_designs() -> Vec<(&'static str, Design)> {
    vec![
        ("minicva6", build_core(&CoreConfig::default())),
        ("minicva6-mul", build_core(&CoreConfig::cva6_mul())),
        ("minicva6-op", build_core(&CoreConfig::cva6_op())),
        ("hardened", build_core(&CoreConfig::hardened())),
        ("tinycore", build_tiny()),
        ("minicache", uarch::cache::build_cache()),
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(format!("{name}.nl"))
}

fn blessing() -> bool {
    std::env::var_os("SYNTHLC_BLESS").is_some_and(|v| v == "1")
}

#[test]
fn goldens_match_and_round_trip() {
    for (name, design) in all_designs() {
        let emitted = uarch::frontend::design_to_text(&design);
        let path = golden_path(name);
        if blessing() {
            std::fs::write(&path, &emitted).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\n(run `SYNTHLC_BLESS=1 cargo test --test frontend_roundtrip` to create)",
                path.display()
            )
        });
        assert_eq!(
            emitted, golden,
            "{name}: emission drifted from examples/{name}.nl — \
             re-bless with SYNTHLC_BLESS=1 if the change is intentional"
        );

        // The golden file must round-trip with zero diagnostics of any
        // severity: the frontend is the public face of the tool, and the
        // designs we ship must be clean under it.
        let (parsed, result) = uarch::frontend::parse_design(&golden, &format!("{name}.nl"));
        assert!(
            result.report.is_clean(),
            "{name}: golden file not diagnostic-clean:\n{}",
            result.report.render_in(&result.source)
        );
        let parsed = parsed.expect("clean check yields a design");
        design
            .netlist
            .same_structure(&parsed.netlist)
            .unwrap_or_else(|e| panic!("{name}: reparsed netlist differs: {e}"));
        assert_eq!(design.isa, parsed.isa, "{name}");
        assert_eq!(design.type_field, parsed.type_field, "{name}");
        assert_eq!(design.type_values, parsed.type_values, "{name}");
        assert_eq!(design.max_latency, parsed.max_latency, "{name}");
        assert_eq!(design.outputs, parsed.outputs, "{name}");
        assert_eq!(design.rs_fields, parsed.rs_fields, "{name}");
        assert_eq!(
            golden,
            uarch::frontend::design_to_text(&parsed),
            "{name}: re-emission is not a fixpoint"
        );
    }
}

#[test]
fn goldens_have_no_strays() {
    // Every .nl file under examples/ must correspond to an in-tree design
    // (so the CI frontend stage checks exactly the shipped set).
    let known: Vec<String> = all_designs()
        .iter()
        .map(|(n, _)| format!("{n}.nl"))
        .collect();
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    for entry in std::fs::read_dir(dir).expect("examples/") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".nl") {
            assert!(
                known.iter().any(|k| *k == name),
                "examples/{name} does not match any in-tree design"
            );
        }
    }
}
