//! §VII-B2 analogue: RTL2MµPATH-style evidence surfaces seeded functional
//! bugs. Our seeded bug: JALR fails to squash the fetch stage on redirect,
//! so a wrong-path instruction executes and can corrupt architectural
//! state — detected both by direct simulation and as extra µPATHs for the
//! wrong-path instruction.

use sim::Simulator;
use uarch::{build_core, CoreConfig};

mod common;

fn run_program(cfg: &CoreConfig, asm: &str, cycles: usize) -> (u64, u64, u64) {
    let design = build_core(cfg);
    let program = isa::assemble(asm).unwrap();
    let mut s = Simulator::new(&design.netlist);
    for _ in 0..cycles {
        let pc = s.value(design.pc) as usize;
        let word = program
            .get(pc)
            .copied()
            .unwrap_or_else(isa::Instr::nop)
            .encode();
        s.set_input(design.fetch_instr_input, word as u64);
        s.set_input(design.fetch_valid_input, 1);
        s.step();
    }
    (s.value_of("arf1"), s.value_of("arf2"), s.value_of("arf3"))
}

/// The JALR redirect target is a non-idempotent instruction: on the buggy
/// core the un-squashed fetch-stage copy executes *and* the redirected
/// refetch executes, so the target runs twice.
const JALR_PROGRAM: &str = "addi r1, r0, 3\n\
                            jalr r2, r1, 0   ; jump to 3\n\
                            addi r3, r0, 15  ; wrong-path poison (dies in ID)\n\
                            addi r1, r1, 1   ; target: must run exactly once\n";

#[test]
fn correct_core_squashes_jalr_wrong_path() {
    let (r1, _r2, r3) = run_program(&CoreConfig::default(), JALR_PROGRAM, 40);
    assert_eq!(r3, 0, "poison instruction must be squashed");
    assert_eq!(r1, 4, "target executes exactly once");
}

#[test]
fn buggy_core_double_executes_jalr_target() {
    let cfg = CoreConfig {
        bug_jalr_no_squash: true,
        ..CoreConfig::default()
    };
    let (r1, _r2, r3) = run_program(&cfg, JALR_PROGRAM, 40);
    assert_eq!(r3, 0, "the poison still dies in the decode squash");
    assert_eq!(
        r1, 5,
        "seeded bug: the un-squashed fetch-stage copy of the target \
         commits in addition to the refetched one"
    );
}

#[test]
fn bug_changes_golden_model_conformance() {
    // The randomized conformance suite would catch this bug; demonstrate
    // the mechanism on the directed program.
    let mut golden = isa::ArchState::new();
    golden.run(&isa::assemble(JALR_PROGRAM).unwrap(), 10);
    let (r1, _r2, r3) = run_program(
        &CoreConfig {
            bug_jalr_no_squash: true,
            ..CoreConfig::default()
        },
        JALR_PROGRAM,
        40,
    );
    assert_eq!(golden.regs[3], 0);
    assert_ne!(
        (r1, r3),
        (golden.regs[1] as u64, golden.regs[3] as u64),
        "buggy core diverges from the golden model"
    );
    assert_eq!(golden.regs[1], 4, "golden target executes once");
}

/// No test in this suite accepts an unvalidated model-checker witness:
/// JALR's `done` cover must be `Reachable` on both the correct and the
/// buggy core, and each witness must replay cycle-accurately in `sim`.
#[test]
fn jalr_done_witnesses_replay_on_both_cores() {
    for bug in [false, true] {
        let design = build_core(&CoreConfig {
            bug_jalr_no_squash: bug,
            ..CoreConfig::default()
        });
        let frame = common::assert_done_witness_replays(
            &design,
            isa::Opcode::Jalr,
            0,
            mupath::ContextMode::Solo,
            16,
        );
        assert!(frame > 0, "JALR cannot complete at cycle 0 (bug={bug})");
    }
}
