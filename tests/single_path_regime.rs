//! The RTL2µSPEC regime (§I): on a stall-free single-path core, every
//! instruction has exactly one µPATH and there are no candidate
//! transponders — the predecessor tool's single-execution-path assumption
//! holds, and RTL2MµPATH degenerates to it gracefully.

use mupath::{synthesize_isa, ContextMode, SynthConfig};
use uarch::build_tiny;

#[test]
fn tinycore_has_one_mupath_per_instruction() {
    let design = build_tiny();
    let cfg = SynthConfig {
        slots: vec![0, 1],
        context: ContextMode::Any,
        bound: 12,
        conflict_budget: Some(1_000_000),
        max_shapes: 16,
    };
    let result = synthesize_isa(&design, &design.isa.clone(), &cfg);
    for instr in &result.instrs {
        assert!(instr.complete, "{}: synthesis incomplete", instr.opcode);
        assert_eq!(
            instr.paths.len(),
            1,
            "{}: expected a single µPATH, got {:?}",
            instr.opcode,
            instr.paths.len()
        );
        assert!(
            instr.decisions.is_empty(),
            "{}: single-path instructions make no decisions",
            instr.opcode
        );
    }
    assert!(
        result.candidate_transponders().is_empty(),
        "no candidate transponders on TinyCore"
    );
}

#[test]
fn tinycore_mupath_is_if_ex_wb() {
    let design = build_tiny();
    let cfg = SynthConfig {
        slots: vec![0],
        context: ContextMode::Solo,
        bound: 10,
        conflict_budget: Some(1_000_000),
        max_shapes: 4,
    };
    let r = mupath::synthesize_instr(&design, isa::Opcode::Add, &cfg);
    assert_eq!(r.paths.len(), 1);
    let p = &r.concrete[0];
    assert_eq!(p.latency(), 3, "IF, EX, WB — one cycle each");
    let pls = r.paths[0]
        .pls
        .iter()
        .map(|&pl| {
            // PL ids follow the µFSM declaration order: IF, EX, WB.
            pl.0
        })
        .collect::<Vec<_>>();
    assert_eq!(pls, vec![0, 1, 2]);
}

#[test]
fn duv_pl_reachability_finds_all_tinycore_pls() {
    let design = build_tiny();
    let cfg = SynthConfig {
        slots: vec![0],
        context: ContextMode::Any,
        bound: 8,
        conflict_budget: Some(1_000_000),
        max_shapes: 4,
    };
    let report = mupath::duv_pl_reachability(&design, &cfg);
    assert_eq!(report.pls.len(), 3);
    assert!(
        report.reachable.iter().all(|&r| r),
        "IF/EX/WB all reachable"
    );
}
