//! End-to-end SynthLC (integration): µPATH synthesis → symbolic IFT →
//! leakage signatures → contracts, on the serial divider (the cheapest
//! intrinsic transmitter to verify).

use mupath::{ContextMode, SynthConfig};
use synthlc::{contracts, synthesize_leakage, LeakConfig, Operand, TxKind};
use uarch::{build_core, CoreConfig};

mod common;

/// Witness discipline (see `tests/common/mod.rs`): before the suite
/// trusts any `Div` leakage evidence, the divider's `done` cover must be
/// `Reachable` and its witness must replay cycle-accurately in `sim`.
#[test]
fn div_done_witness_replays_in_sim() {
    let design = build_core(&CoreConfig::default());
    let frame =
        common::assert_done_witness_replays(&design, isa::Opcode::Div, 0, ContextMode::Solo, 18);
    assert!(frame > 0, "a divide cannot complete at cycle 0");
}

fn quick_cfg() -> LeakConfig {
    LeakConfig {
        mupath: SynthConfig {
            slots: vec![0],
            context: ContextMode::Solo,
            bound: 18,
            conflict_budget: Some(2_000_000),
            max_shapes: 32,
        },
        transmitters: vec![isa::Opcode::Div],
        kinds: vec![TxKind::Intrinsic],
        bound: 18,
        conflict_budget: Some(2_000_000),
        threads: 1,
        budget_pool: None,
        slot_base: 0,
        max_sources: Some(2),
        coi: true,
        static_prune: true,
        robust: Default::default(),
    }
}

#[test]
fn div_is_an_intrinsic_transmitter_with_both_operands_unsafe() {
    let design = build_core(&CoreConfig::default());
    let cfg = quick_cfg();
    let report = synthesize_leakage(&design, &[isa::Opcode::Div], &cfg);
    assert!(
        report.candidate_transponders.contains(&isa::Opcode::Div),
        "DIV has multiple µPATHs"
    );
    assert!(
        report.transponders.contains(&isa::Opcode::Div),
        "DIV carries a leakage signature"
    );
    let intrinsic = report.transmitter_opcodes(TxKind::Intrinsic);
    assert!(intrinsic.contains(&isa::Opcode::Div), "DIV^N flagged");
    // Both the dividend (latency ~ significant bits of rs1) and the divisor
    // (one-cycle early-out when rs2 == 0) are unsafe.
    let operands: std::collections::BTreeSet<Operand> = report
        .transmitters
        .iter()
        .filter(|t| t.opcode == isa::Opcode::Div)
        .map(|t| t.operand)
        .collect();
    assert!(operands.contains(&Operand::Rs1), "rs1 (dividend) unsafe");
    assert!(operands.contains(&Operand::Rs2), "rs2 (divisor) unsafe");

    // Contract derivation consumes the signatures.
    let c = contracts::derive_contracts(&report);
    assert!(c.ct.unsafe_operands.contains_key(&isa::Opcode::Div));
    assert!(
        !c.stt.explicit_channels.is_empty(),
        "explicit channel found"
    );
    assert!(
        c.dolma.variable_time_micro_ops.contains(&isa::Opcode::Div),
        "Dolma flags DIV as variable-time"
    );
    assert!(
        c.oisa
            .input_dependent_units
            .iter()
            .any(|(op, unit)| *op == isa::Opcode::Div && unit == "divU"),
        "OISA names the divider unit"
    );
}

#[test]
fn hardened_core_yields_no_intrinsic_div_signature() {
    let design = build_core(&CoreConfig::hardened());
    let cfg = quick_cfg();
    let report = synthesize_leakage(&design, &[isa::Opcode::Div], &cfg);
    // On the hardened core, a solo DIV has a single µPATH: it is not even a
    // candidate transponder, so no signatures exist.
    assert!(
        report.signatures.is_empty(),
        "hardened divider must synthesize no leakage signatures, got {:?}",
        report
            .signatures
            .iter()
            .map(|s| s.render())
            .collect::<Vec<_>>()
    );
}
