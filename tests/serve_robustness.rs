//! Chaos tests for the serve daemon (DESIGN.md §13, ISSUE 9).
//!
//! Three layers:
//!
//! * **in-process fault sweep** — pinned-seed [`mc::FaultPlan`] schedules
//!   (worker panics, deadline expiries, queue stalls, torn journal
//!   writes) against a live [`serve::Server`], asserting the verdicts
//!   only *widen* (clean payload byte-identical to the fault-free
//!   baseline, or `exit: 2`) and that a retry budget converges a
//!   transient fault back to the clean verdict;
//! * **in-process cache reuse** — an identical resubmission is answered
//!   from the verdict store byte-identically, with the reuse counter
//!   advancing;
//! * **kill-and-restart** — a real `synthlc-cli serve` process is
//!   SIGKILLed mid-batch and restarted on the same journal
//!   (`--resume`); the resumed daemon must answer the already-completed
//!   job byte for byte identically, from cache.

use jsonio::{jsonl, Json};
use mc::{FaultPlan, ServeFault};
use serve::{Op, Request, ServeConfig, Server, Submit, VerdictStore};
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::sync::{mpsc, Arc};
use std::time::Duration;

fn paths_req(id: &str) -> Request {
    let mut r = Request::new(Op::Paths);
    r.id = id.to_owned();
    r.design = Some("tinycore".to_owned());
    r.instr = Some("add".to_owned());
    r
}

fn check_req(id: &str, source: &str) -> Request {
    let mut r = Request::new(Op::Check);
    r.id = id.to_owned();
    r.source = Some(source.to_owned());
    r
}

/// Runs `reqs` through a one-worker server and returns, per request id,
/// the `done` payload plus every `progress` note seen for it.
fn run_jobs(
    cfg: ServeConfig,
    store: Option<Arc<VerdictStore>>,
    reqs: &[Request],
) -> (HashMap<String, Json>, HashMap<String, Vec<String>>) {
    let server = Server::start(cfg, store);
    let (tx, rx) = mpsc::channel();
    for r in reqs {
        assert!(
            matches!(server.submit(r.clone(), tx.clone()), Submit::Accepted(_)),
            "submission under queue_cap must be accepted"
        );
    }
    drop(tx);
    server.join();
    collect_events(rx)
}

fn collect_events(
    rx: mpsc::Receiver<Json>,
) -> (HashMap<String, Json>, HashMap<String, Vec<String>>) {
    let mut dones = HashMap::new();
    let mut notes: HashMap<String, Vec<String>> = HashMap::new();
    for ev in rx {
        let id = ev
            .field("id")
            .and_then(Json::as_str)
            .expect("every event is id-tagged")
            .to_owned();
        match ev.field("ev").and_then(Json::as_str) {
            Some("done") => {
                let prev = dones.insert(id, ev.field("result").expect("done has result").clone());
                assert!(prev.is_none(), "exactly one done event per job");
            }
            Some("progress") => {
                let note = ev
                    .field("note")
                    .and_then(Json::as_str)
                    .expect("progress has note")
                    .to_owned();
                notes.entry(id).or_default().push(note);
            }
            Some("accepted") => {}
            Some("error") => panic!("unexpected error event: {}", ev.render_compact()),
            other => panic!("unexpected event kind {other:?}"),
        }
    }
    (dones, notes)
}

fn exit_of(payload: &Json) -> u64 {
    payload
        .field("exit")
        .and_then(Json::as_u64)
        .expect("every verdict carries exit")
}

fn one_worker(faults: FaultPlan, retries: u32) -> ServeConfig {
    ServeConfig {
        workers: 1,
        retries,
        faults,
        backoff_ms: 1,
        ..ServeConfig::default()
    }
}

/// The fault-free baseline verdict for `paths tinycore add` — what every
/// clean run, retried run, cached run, and restarted run must reproduce
/// byte for byte.
fn baseline_paths_verdict() -> String {
    let (dones, _) = run_jobs(
        one_worker(FaultPlan::disabled(), 0),
        None,
        &[paths_req("b")],
    );
    let payload = &dones["b"];
    assert_eq!(exit_of(payload), 0, "baseline must be clean");
    payload.render_compact()
}

#[test]
fn fault_sweep_verdicts_only_widen() {
    let baseline = baseline_paths_verdict();
    // A pinned sweep of seeds at a punishing rate: whatever schedule each
    // seed plans (panics, expiries, stalls, torn writes), the verdict is
    // either the clean baseline or an explicit widening to exit 2 —
    // never a third thing.
    for seed in [1u64, 7, 13, 42, 99] {
        let store = Arc::new(VerdictStore::create(tmp_path(&format!("sweep-{seed}"))).unwrap());
        let reqs: Vec<Request> = (0..3).map(|i| paths_req(&format!("j{i}"))).collect();
        let (dones, _) = run_jobs(
            one_worker(FaultPlan::new(seed, 0.8), 1),
            Some(Arc::clone(&store)),
            &reqs,
        );
        for (id, payload) in &dones {
            let rendered = payload.render_compact();
            assert!(
                rendered == baseline || exit_of(payload) == 2,
                "seed {seed} job {id}: fault produced a *different* clean verdict:\n  \
                 got      {rendered}\n  expected {baseline} (or exit 2)"
            );
        }
        // Whatever reached the store is a clean verdict by construction:
        // replaying the journal must never surface a widened record.
        drop(dones);
        std::fs::remove_file(tmp_path(&format!("sweep-{seed}"))).ok();
    }
}

#[test]
fn transient_worker_panic_converges_clean_via_retry() {
    let baseline = baseline_paths_verdict();
    // serve::CI_SMOKE_SEED pins: job seq 0 panics on attempt 0 and runs
    // clean on attempt 1 (asserted in crates/serve/src/lib.rs).
    let cfg = one_worker(FaultPlan::new(serve::CI_SMOKE_SEED, 0.5), 2);
    let server = Server::start(cfg, None);
    let (tx, rx) = mpsc::channel();
    assert!(matches!(
        server.submit(paths_req("p"), tx),
        Submit::Accepted(0)
    ));
    server.join();
    assert!(
        server.retried() >= 1,
        "the injected panic must cost a retry"
    );
    assert_eq!(server.degraded(), 0, "the retry must converge, not degrade");
    let (dones, notes) = collect_events(rx);
    assert_eq!(dones["p"].render_compact(), baseline);
    assert!(
        notes["p"].iter().any(|n| n.contains("panic caught")),
        "the supervisor must report the caught panic: {:?}",
        notes["p"]
    );
}

#[test]
fn exhausted_retry_budget_degrades_to_undetermined() {
    // Find a seed whose schedule hard-faults job seq 0 on both attempt 0
    // and attempt 1 (retries = 1): the budget exhausts and the verdict
    // stands widened.
    let hard = |f: Option<ServeFault>| {
        matches!(
            f,
            Some(ServeFault::WorkerPanic | ServeFault::DeadlineExpired)
        )
    };
    let seed = (0..200_000u64)
        .find(|&s| {
            let p = FaultPlan::new(s, 0.8);
            hard(p.serve_fault_for("serve-worker", 0, 0))
                && hard(p.serve_fault_for("serve-worker", 0, 1))
        })
        .expect("some seed plans back-to-back hard faults");
    let (dones, _) = run_jobs(
        one_worker(FaultPlan::new(seed, 0.8), 1),
        None,
        &[paths_req("x")],
    );
    assert_eq!(
        exit_of(&dones["x"]),
        2,
        "an exhausted retry budget widens to exit 2 (seed {seed}): {}",
        dones["x"].render_compact()
    );
}

#[test]
fn deadline_expiry_widens_never_flips() {
    let baseline = baseline_paths_verdict();
    // A seed that plans exactly DeadlineExpired for job 0 attempt 0 with
    // no retries: the watchdog starts the attempt pre-expired, so the
    // solver degrades cooperatively.
    let seed = (0..200_000u64)
        .find(|&s| {
            FaultPlan::new(s, 0.5).serve_fault_for("serve-worker", 0, 0)
                == Some(ServeFault::DeadlineExpired)
        })
        .expect("some seed plans a deadline expiry first");
    let (dones, _) = run_jobs(
        one_worker(FaultPlan::new(seed, 0.5), 0),
        None,
        &[paths_req("d")],
    );
    let payload = &dones["d"];
    assert!(
        payload.render_compact() == baseline || exit_of(payload) == 2,
        "an expired watchdog may only widen: {}",
        payload.render_compact()
    );
    assert_ne!(
        exit_of(payload),
        0,
        "with zero retries an expired watchdog cannot produce the clean verdict's exit"
    );
}

#[test]
fn identical_resubmission_is_served_from_cache_byte_identically() {
    let path = tmp_path("cache-hit");
    let store = Arc::new(VerdictStore::create(&path).unwrap());
    let server = Server::start(
        one_worker(FaultPlan::disabled(), 0),
        Some(Arc::clone(&store)),
    );
    let (tx, rx) = mpsc::channel();
    assert!(matches!(
        server.submit(paths_req("first"), tx.clone()),
        Submit::Accepted(_)
    ));
    server.drain();
    assert_eq!(store.hits(), 0, "a first-ever job cannot hit the cache");
    assert!(matches!(
        server.submit(paths_req("second"), tx.clone()),
        Submit::Accepted(_)
    ));
    drop(tx);
    server.join();
    assert_eq!(store.hits(), 1, "the resubmission must be a cache hit");
    let (dones, notes) = collect_events(rx);
    assert_eq!(
        dones["first"].render_compact(),
        dones["second"].render_compact(),
        "a cached answer must be byte-identical to the computed one"
    );
    assert!(
        notes["second"].iter().any(|n| n.contains("verdict store")),
        "cache provenance rides in progress events: {:?}",
        notes.get("second")
    );
    assert!(
        notes
            .get("first")
            .is_none_or(|ns| ns.iter().all(|n| !n.contains("verdict store"))),
        "the first run must not claim cache provenance"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn overload_sheds_explicitly_and_shutdown_refuses() {
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        retries: 0,
        faults: FaultPlan::disabled(),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, None);
    let (tx, rx) = mpsc::channel();
    // Fill the queue faster than one worker drains it; at least the
    // accepted ones complete, the rest shed with an explicit answer.
    let mut accepted = 0;
    let mut shed = 0;
    for i in 0..6 {
        match server.submit(paths_req(&format!("q{i}")), tx.clone()) {
            Submit::Accepted(_) => accepted += 1,
            Submit::Overloaded => shed += 1,
            Submit::ShuttingDown => panic!("not shutting down yet"),
        }
    }
    assert!(accepted >= 1, "at least one job fits the queue");
    server.shutdown();
    assert!(
        matches!(
            server.submit(paths_req("late"), tx.clone()),
            Submit::ShuttingDown
        ),
        "a draining daemon refuses new work explicitly"
    );
    drop(tx);
    server.join();
    let (dones, _) = collect_events(rx);
    assert_eq!(
        dones.len(),
        accepted,
        "graceful drain: every accepted job gets its done event, shed ones don't ({shed} shed)"
    );
}

// --- kill-and-restart against the real binary --------------------------

struct Daemon {
    child: std::process::Child,
    addr: String,
}

fn spawn_daemon(journal_flag: &str, journal: &std::path::Path) -> Daemon {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_synthlc-cli"))
        .args([
            "serve",
            "--port",
            "0",
            "--workers",
            "1",
            journal_flag,
            journal.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn synthlc-cli serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon prints its address")
        .expect("readable stdout");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_owned();
    Daemon { child, addr }
}

/// Writes `reqs` and returns the raw `done`/`bye` line per id, byte for
/// byte as the daemon sent it.
fn client_roundtrip(addr: &str, reqs: &[Request]) -> HashMap<String, String> {
    let sock = TcpStream::connect(addr).expect("connect to daemon");
    sock.set_read_timeout(Some(Duration::from_secs(300)))
        .unwrap();
    let mut writer = sock.try_clone().unwrap();
    for r in reqs {
        jsonl::write_line(&mut writer, &r.encode()).unwrap();
    }
    let mut reader = BufReader::new(sock);
    let mut terminal = HashMap::new();
    while terminal.len() < reqs.len() {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("daemon stays up") > 0,
            "daemon closed the connection early"
        );
        let ev = Json::parse(line.trim_end()).expect("well-formed event line");
        let kind = ev.field("ev").and_then(Json::as_str).unwrap_or("");
        if matches!(kind, "done" | "bye") {
            let id = ev
                .field("id")
                .and_then(Json::as_str)
                .expect("tagged")
                .to_owned();
            terminal.insert(id, line.trim_end().to_owned());
        }
        assert_ne!(kind, "error", "unexpected error event: {}", line.trim());
    }
    terminal
}

#[test]
fn killed_daemon_resumes_byte_identically_from_its_journal() {
    let journal = tmp_path("kill-restart");
    std::fs::remove_file(&journal).ok();

    // Phase 1: fresh daemon, complete one job, then SIGKILL it mid-batch
    // (two more jobs submitted on a second connection are still queued or
    // in flight when the kill lands).
    let d1 = spawn_daemon("--journal", &journal);
    let first = client_roundtrip(&d1.addr, &[paths_req("j1")]);
    {
        // Mid-batch load the crash interrupts; answers never arrive.
        let sock = TcpStream::connect(&d1.addr).unwrap();
        let mut w = sock.try_clone().unwrap();
        jsonl::write_line(&mut w, &paths_req("j2").encode()).unwrap();
        jsonl::write_line(
            &mut w,
            &check_req("j3", "module m { input clk: 1; }").encode(),
        )
        .unwrap();
    }
    let mut child = d1.child;
    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap the daemon");

    // Phase 2: restart on the same journal. The completed job must be
    // answered byte for byte identically, from cache (no re-solve).
    let d2 = spawn_daemon("--resume", &journal);
    let resumed = client_roundtrip(
        &d2.addr,
        &[
            paths_req("j1"),
            paths_req("j2"),
            check_req("j3", "module m { input clk: 1; }"),
        ],
    );
    assert_eq!(
        resumed["j1"], first["j1"],
        "the restarted daemon must answer a journaled job byte-identically"
    );
    assert_eq!(
        resumed["j2"],
        resumed["j1"].replace("\"j1\"", "\"j2\""),
        "identical work under a different id differs only in the id tag"
    );

    // The restarted daemon served j1 (and j2, identical work) from the
    // replayed journal: stats must show the reuse.
    let sock = TcpStream::connect(&d2.addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut w = sock.try_clone().unwrap();
    jsonl::write_line(&mut w, &Request::new(Op::Stats).encode()).unwrap();
    let mut line = String::new();
    BufReader::new(sock).read_line(&mut line).unwrap();
    let stats = Json::parse(line.trim_end()).unwrap();
    assert!(
        stats
            .field("cache_hits")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "resume must answer from the replayed journal: {line}"
    );

    // Phase 3: graceful shutdown drains and exits 0.
    let bye = client_roundtrip(&d2.addr, &[Request::new(Op::Shutdown)]);
    assert!(bye.values().next().unwrap().contains("bye"));
    let mut child = d2.child;
    let status = child.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "graceful drain exits 0, got {status:?}");
    std::fs::remove_file(journal).ok();
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("synthlc-serve-robustness");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}
