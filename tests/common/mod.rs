//! Shared helpers for the integration-test suite.
//!
//! The central one is [`assert_witness_replays`]: no integration test may
//! accept a model-checker `Reachable` verdict without re-simulating its
//! witness cycle-accurately through `sim` — the same engine-independence
//! discipline the `fuzz` crate's differential oracles apply to random
//! designs (DESIGN.md §9).

#![allow(dead_code)]

use mc::{Checker, McConfig, Outcome, Trace};
use mupath::{build_harness, ContextMode, HarnessConfig};
use netlist::{Netlist, SignalId};
use sim::Simulator;
use uarch::Design;

/// Replays a `Reachable` witness through the cycle-accurate simulator:
/// the symbolic initial state (`free` registers) is imposed from frame 0,
/// the recorded input script is driven, and **every** signal of **every**
/// frame must match the witness exactly; the cover must fire. Returns the
/// first frame the cover fired at.
///
/// # Panics
/// Panics (failing the test) on any divergence or if the cover stays low.
pub fn assert_witness_replays(
    nl: &Netlist,
    free: &[SignalId],
    trace: &Trace,
    cover: SignalId,
) -> usize {
    let mut s = Simulator::new(nl);
    for &reg in free {
        s.poke_reg(reg, trace.value(0, reg));
    }
    let script = trace.input_script();
    assert!(!script.is_empty(), "witness has at least one frame");
    let mut fired = None;
    for (t, inputs) in script.iter().enumerate() {
        for (&sig, &v) in inputs {
            s.set_input(sig, v);
        }
        for (id, _) in nl.iter() {
            assert_eq!(
                s.value(id),
                trace.value(t, id),
                "cycle {t}: `{}` diverges between simulator and witness",
                nl.display_name(id)
            );
        }
        if fired.is_none() && s.value(cover) != 0 {
            fired = Some(t);
        }
        s.step();
    }
    fired.expect("cover never fired during witness replay")
}

/// Builds the per-instruction harness, proves the instruction-under-
/// verification's `done` cover reachable, and replay-validates the
/// witness. Returns the completion frame.
///
/// # Panics
/// Panics if the cover is not `Reachable` or the witness diverges.
pub fn assert_done_witness_replays(
    design: &Design,
    opcode: isa::Opcode,
    fetch_slot: usize,
    context: ContextMode,
    bound: usize,
) -> usize {
    let h = build_harness(
        design,
        &HarnessConfig {
            opcode,
            fetch_slot,
            context,
        },
    );
    let free: Vec<SignalId> = design
        .annotations
        .arf
        .iter()
        .chain(design.annotations.amem.iter())
        .copied()
        .collect();
    let mut chk = Checker::with_free_regs(
        &h.netlist,
        McConfig {
            bound,
            ..Default::default()
        },
        &free,
    );
    match chk.check_cover(h.iuv_done, &h.assumes) {
        Outcome::Reachable(trace) => assert_witness_replays(&h.netlist, &free, &trace, h.iuv_done),
        other => panic!("{opcode:?}: done-cover expected Reachable, got {other:?}"),
    }
}
