//! §VII-B2's third finding, reproduced: the paper noticed from
//! RTL2MµPATH's reachable-cover waveforms that CVA6's scoreboard was
//! "always underutilized by one entry" and localized it to an incorrect
//! counter-width declaration. The seeded analogue here drops the ring's
//! occupancy ceiling by one; a cover property over simultaneous entry
//! occupancy separates the correct core (reachable) from the buggy one
//! (proven unreachable) — the same evidence class the paper used.

use mc::{Checker, McConfig};
use netlist::Builder;
use uarch::{build_core, CoreConfig};

/// Cover "both scoreboard entries valid simultaneously" on a core.
fn both_entries_reachable(cfg: &CoreConfig) -> bool {
    let design = build_core(cfg);
    let mut b = Builder::from_netlist(design.netlist.clone());
    let v0 = b.wire_named("sc0_v");
    let v1 = b.wire_named("sc1_v");
    let both = b.and(v0, v1);
    b.name(both, "both_valid");
    let nl = b.finish().unwrap();
    let cover = nl.find("both_valid").unwrap();
    let free: Vec<_> = design
        .annotations
        .arf
        .iter()
        .chain(design.annotations.amem.iter())
        .copied()
        .collect();
    let mut chk = Checker::with_free_regs(
        &nl,
        McConfig {
            bound: 14,
            ..Default::default()
        },
        &free,
    );
    chk.check_cover(cover, &[]).is_reachable()
}

#[test]
fn correct_core_fills_the_scoreboard() {
    assert!(
        both_entries_reachable(&CoreConfig::default()),
        "both SCB entries can be occupied simultaneously"
    );
}

#[test]
fn buggy_core_underutilizes_the_scoreboard() {
    let cfg = CoreConfig {
        bug_scb_underutilized: true,
        ..CoreConfig::default()
    };
    assert!(
        !both_entries_reachable(&cfg),
        "the seeded occupancy bug caps the ring at one entry — the \
         paper's under-utilised-SCB symptom, proven by an unreachable cover"
    );
}

#[test]
fn buggy_core_is_still_architecturally_correct() {
    // The bug costs performance, not correctness: the buggy core still
    // conforms on a directed program (it just issues more slowly).
    let cfg = CoreConfig {
        bug_scb_underutilized: true,
        ..CoreConfig::default()
    };
    let design = build_core(&cfg);
    let program =
        isa::assemble("addi r1, r0, 7\naddi r2, r0, 3\nadd r3, r1, r2\nmul r1, r3, r2\n").unwrap();
    let mut golden = isa::ArchState::new();
    golden.run(&program, 10);
    let mut s = sim::Simulator::new(&design.netlist);
    for _ in 0..60 {
        let pc = s.value(design.pc) as usize;
        let word = program
            .get(pc)
            .copied()
            .unwrap_or_else(isa::Instr::nop)
            .encode();
        s.set_input(design.fetch_instr_input, word as u64);
        s.set_input(design.fetch_valid_input, 1);
        s.step();
    }
    assert_eq!(s.value_of("arf1"), golden.regs[1] as u64);
    assert_eq!(s.value_of("arf3"), golden.regs[3] as u64);
}
