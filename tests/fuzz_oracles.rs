//! Integration coverage of the `fuzz` crate's library API (DESIGN.md §9):
//! the same API the `synthlc-cli fuzz` subcommand and the CI
//! `fuzz-smoke` stage call. Heavier sweeps live in CI; this keeps a
//! small deterministic slice in the tier-1 suite.

use fuzz::{run_fuzz, FuzzConfig, OracleKind, SeededBug};

/// Healthy engines must agree on every generated design, and the run
/// must be a pure function of the seed: same seed → byte-identical
/// report (text and JSON), different seed → different designs.
#[test]
fn fuzz_run_is_clean_and_seed_deterministic() {
    let cfg = FuzzConfig {
        seed: 0xA5A5,
        cases: 10,
        ..Default::default()
    };
    let a = run_fuzz(&cfg);
    assert!(
        !a.has_mismatches(),
        "differential mismatch on healthy engines:\n{}",
        a.render()
    );
    assert!(a.completed);
    assert_eq!(a.cases_run, 10);
    let b = run_fuzz(&cfg);
    assert_eq!(a.render(), b.render(), "report text must be reproducible");
    assert_eq!(
        a.to_json().render_compact(),
        b.to_json().render_compact(),
        "report JSON must be reproducible"
    );
    // Every oracle actually exercised at least one case (nothing was
    // silently skipped wholesale).
    for (kind, stats) in &a.stats {
        assert!(
            stats.agree > 0,
            "oracle {} never produced an agreement across 10 cases",
            kind.label()
        );
    }
    let c = run_fuzz(&FuzzConfig {
        seed: 0x5A5A,
        ..cfg.clone()
    });
    assert_ne!(a.render(), c.render(), "seed must steer generation");
}

/// End-to-end bug-surfacing drill through the public API: a planted
/// engine defect must be caught, shrunk, and serialized as a repro that
/// replays from its JSON line alone — mismatching with the bug present,
/// clean with the bug removed.
#[test]
fn seeded_bug_yields_shrunk_replayable_repro() {
    let report = run_fuzz(&FuzzConfig {
        seed: 7,
        cases: 24,
        oracles: vec![OracleKind::Sat],
        seeded_bug: Some(SeededBug::DpllBadSat),
        ..Default::default()
    });
    assert!(
        report.has_mismatches(),
        "the planted DPLL bug went unnoticed"
    );
    let repro = &report.mismatches[0];
    let line = repro.encode();
    let parsed = fuzz::Repro::decode(&line).expect("repro line decodes");
    assert!(
        parsed.replay(Some(SeededBug::DpllBadSat)).is_mismatch(),
        "decoded repro must reproduce the mismatch under the bug"
    );
    assert!(
        !parsed.replay(None).is_mismatch(),
        "the same repro must be clean on healthy engines"
    );
}
