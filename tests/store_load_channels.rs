//! §IV-A / §VII-A1 reproduction (integration): the store-to-load
//! page-offset stall and the committed-store-buffer drain channel,
//! validated with the SC-Safe simulation experiment (fast) and a medium
//! µPATH synthesis run (slower, still minutes-scale).

use mupath::{synthesize_instr, ContextMode, SynthConfig};
use synthlc::scsafe::{check_sc_safe, SecretLocation};
use uarch::{build_core, CoreConfig};

mod common;

/// Witness discipline (see `tests/common/mod.rs`): the load's `done`
/// cover in the store-context harness must be `Reachable`, and the
/// witness must replay cycle-accurately through `sim` before the suite
/// trusts any `Lw` µPATH evidence.
#[test]
fn load_done_witness_replays_in_sim() {
    let design = build_core(&CoreConfig::default());
    let frame = common::assert_done_witness_replays(
        &design,
        isa::Opcode::Lw,
        1,
        ContextMode::NoControlFlow,
        22,
    );
    assert!(frame > 0, "a load cannot complete at cycle 0");
}

/// The store's (secret) address determines whether a following load to a
/// fixed address stalls: the load's timing leaks the store's address
/// offset — the `LD_issue` channel (Fig. 5).
#[test]
fn sc_safe_store_address_leaks_through_load_stall() {
    // r1 = secret store address; load reads address 0.
    let program = isa::assemble(
        "addi r2, r0, 9\n\
         sw   r1, r2, 0   ; mem[r1] = 9\n\
         lw   r3, r0, 0   ; load from 0 stalls iff offset(r1) == 0\n",
    )
    .unwrap();
    let design = build_core(&CoreConfig::default());
    // Secrets 0 and 1 have different page offsets (low 2 bits).
    let res = check_sc_safe(&design, &program, SecretLocation::Reg(1), 4, 5, 3);
    assert!(
        res.violated,
        "offset-matching vs non-matching store addresses must differ"
    );
    // Two non-matching offsets are indistinguishable... but only if the
    // addresses also agree on everything else observable. 5 and 6 differ
    // in offset (01 vs 10), neither matching 00: no stall either way.
    let res = check_sc_safe(&design, &program, SecretLocation::Reg(1), 5, 6, 3);
    assert!(!res.violated, "both secrets avoid the stall: traces agree");
}

/// The paper's novel channel (§VII-A1): a *committed* store's drain stalls
/// behind a younger load taking the memory port, so the store's
/// post-commit occupancy depends on the younger load's address.
#[test]
fn sc_safe_comstb_drain_depends_on_younger_load() {
    // Store to a fixed address commits, then drains; the younger load's
    // address (secret) decides the port arbitration.
    let program = isa::assemble(
        "addi r2, r0, 9\n\
         sw   r0, r2, 2   ; mem[2] = 9\n\
         lw   r3, r1, 0   ; younger load, secret base address\n",
    )
    .unwrap();
    let design = build_core(&CoreConfig::default());
    // Load offset 2 conflicts with the store's offset (load stalls, store
    // drains); load offset 1 wins the port (store stalls).
    let res = check_sc_safe(&design, &program, SecretLocation::Reg(1), 2, 1, 3);
    assert!(
        res.violated,
        "younger load address changes the drain schedule"
    );
}

/// Medium-weight µPATH check: with one older context instruction allowed,
/// the load exhibits both the finish and the stall µPATHs.
#[test]
fn load_exhibits_stall_and_finish_paths() {
    let design = build_core(&CoreConfig::default());
    let cfg = SynthConfig {
        slots: vec![1],
        context: ContextMode::NoControlFlow,
        bound: 22,
        conflict_budget: Some(2_000_000),
        max_shapes: 32,
    };
    let r = synthesize_instr(&design, isa::Opcode::Lw, &cfg);
    assert!(r.paths.len() > 1, "LW must be a candidate transponder");
    // Find the ldStall PL id by name.
    let harness = mupath::build_harness(
        &design,
        &mupath::HarnessConfig {
            opcode: isa::Opcode::Lw,
            fetch_slot: 1,
            context: ContextMode::NoControlFlow,
        },
    );
    let stall_pl = harness.pls.find("ldStall").expect("ldStall PL exists");
    let fin_pl = harness.pls.find("ldFin").expect("ldFin PL exists");
    let some_stall = r.concrete.iter().any(|p| !p.cycles(stall_pl).is_empty());
    let all_fin = r.concrete.iter().all(|p| !p.cycles(fin_pl).is_empty());
    assert!(some_stall, "a stalled µPATH exists");
    assert!(all_fin, "every load eventually finishes within the bound");
    // Stalled paths are strictly longer than unstalled ones.
    let stalled_min = r
        .concrete
        .iter()
        .filter(|p| !p.cycles(stall_pl).is_empty())
        .map(|p| p.latency())
        .min()
        .expect("stalled path");
    let unstalled_min = r
        .concrete
        .iter()
        .filter(|p| p.cycles(stall_pl).is_empty())
        .map(|p| p.latency())
        .min()
        .expect("unstalled path");
    assert!(stalled_min > unstalled_min, "stall adds latency");
}
