//! §VII-A2 reproduction (integration): the standalone cache DUV exhibits
//! hit/miss µPATH splits for both transaction types, *static* LD
//! transmitters (an earlier read's refill decides a later read's path), and
//! much cheaper property evaluation than the core (modularity).

use mupath::{synthesize_instr, ContextMode, SynthConfig};
use uarch::cache::build_cache;

fn cfg(slots: Vec<usize>, bound: usize) -> SynthConfig {
    SynthConfig {
        slots,
        context: ContextMode::Any,
        bound,
        conflict_budget: Some(2_000_000),
        max_shapes: 48,
    }
}

#[test]
fn read_has_hit_and_miss_paths() {
    let design = build_cache();
    let r = synthesize_instr(&design, isa::Opcode::Lw, &cfg(vec![0, 1], 18));
    assert!(r.complete);
    assert!(
        r.paths.len() >= 2,
        "read must split into hit/miss µPATHs, got {}",
        r.paths.len()
    );
    // Identify the mshr/refill and bank PLs by name via a harness table.
    let h = mupath::build_harness(
        &design,
        &mupath::HarnessConfig {
            opcode: isa::Opcode::Lw,
            fetch_slot: 0,
            context: ContextMode::Any,
        },
    );
    let mshr = h.pls.find("mshr").unwrap();
    let rb0 = h.pls.find("rdBank0").unwrap();
    let rb1 = h.pls.find("rdBank1").unwrap();
    let miss_paths = r
        .concrete
        .iter()
        .filter(|p| !p.cycles(mshr).is_empty())
        .count();
    let hit_paths = r
        .concrete
        .iter()
        .filter(|p| !p.cycles(rb0).is_empty() || !p.cycles(rb1).is_empty())
        .count();
    assert!(miss_paths > 0, "a miss path exists");
    assert!(hit_paths > 0, "a hit path exists (slot 1 after a refill)");
    // Misses are slower.
    let min_miss = r
        .concrete
        .iter()
        .filter(|p| !p.cycles(mshr).is_empty())
        .map(|p| p.latency())
        .min()
        .unwrap();
    let min_hit = r
        .concrete
        .iter()
        .filter(|p| p.cycles(mshr).is_empty() && !p.is_empty())
        .map(|p| p.latency())
        .min()
        .unwrap();
    assert!(min_miss > min_hit, "miss latency exceeds hit latency");
}

#[test]
fn write_has_bank_access_only_on_hit() {
    // Fig. 4c: a write visits wrTag always, and a wrBank only on a hit.
    let design = build_cache();
    let r = synthesize_instr(&design, isa::Opcode::Sw, &cfg(vec![0, 1], 18));
    let h = mupath::build_harness(
        &design,
        &mupath::HarnessConfig {
            opcode: isa::Opcode::Sw,
            fetch_slot: 0,
            context: ContextMode::Any,
        },
    );
    let wt = h.pls.find("wrTag").unwrap();
    let wk0 = h.pls.find("wrBank0").unwrap();
    let wk1 = h.pls.find("wrBank1").unwrap();
    assert!(r.paths.len() >= 2, "write hit/miss split");
    for p in &r.concrete {
        assert!(!p.cycles(wt).is_empty(), "every write checks tags (wrTag)");
    }
    let with_bank = r
        .concrete
        .iter()
        .any(|p| !p.cycles(wk0).is_empty() || !p.cycles(wk1).is_empty());
    let without_bank = r
        .concrete
        .iter()
        .any(|p| p.cycles(wk0).is_empty() && p.cycles(wk1).is_empty());
    assert!(with_bank, "hit path touches a data bank");
    assert!(without_bank, "no-write-allocate: miss path skips the banks");
}

/// Modularity (§VII-B3): cache properties evaluate much faster than core
/// properties at the same bound.
#[test]
fn cache_properties_are_cheaper_than_core_properties() {
    let cache = build_cache();
    let core = uarch::build_core(&uarch::CoreConfig::default());
    let r_cache = synthesize_instr(&cache, isa::Opcode::Lw, &cfg(vec![0], 18));
    let core_cfg = SynthConfig {
        slots: vec![0],
        context: ContextMode::NoControlFlow,
        bound: 18,
        conflict_budget: Some(2_000_000),
        max_shapes: 48,
    };
    let r_core = synthesize_instr(&core, isa::Opcode::Lw, &core_cfg);
    assert!(
        r_cache.stats.avg_seconds() < r_core.stats.avg_seconds(),
        "modularity: cache avg {:.2}s < core avg {:.2}s",
        r_cache.stats.avg_seconds(),
        r_core.stats.avg_seconds()
    );
}

/// The cache experiment's headline finding (§VII-A2): loads are flagged as
/// *static* transmitters — an earlier, already-retired read's address
/// decides a later read's hit/miss path via the persistent tag state.
#[test]
fn earlier_load_is_a_static_transmitter_for_later_loads() {
    use synthlc::{synthesize_leakage, LeakConfig, TxKind};
    let design = build_cache();
    let cfg = LeakConfig {
        mupath: SynthConfig {
            slots: vec![2],
            context: ContextMode::Any,
            bound: 24,
            conflict_budget: Some(2_000_000),
            max_shapes: 48,
        },
        transmitters: vec![isa::Opcode::Lw],
        kinds: vec![TxKind::Static],
        bound: 24,
        conflict_budget: Some(2_000_000),
        threads: 1,
        budget_pool: None,
        slot_base: 1,
        max_sources: Some(1),
        coi: true,
        static_prune: true,
        robust: Default::default(),
    };
    let report = synthesize_leakage(&design, &[isa::Opcode::Lw], &cfg);
    let statics = report.transmitter_opcodes(TxKind::Static);
    assert!(
        statics.contains(&isa::Opcode::Lw),
        "LW^S must be flagged; signatures: {:?}",
        report
            .signatures
            .iter()
            .map(|s| s.render())
            .collect::<Vec<_>>()
    );
}
