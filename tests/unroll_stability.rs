//! `Unrolling::extend_to` stability: growing an unrolling in place must be
//! indistinguishable from building it at the final bound directly.
//!
//! This is the property the whole incremental-solving layer rests on
//! (DESIGN.md §12): a pooled solver context extends its unrolling when a
//! deeper bound is requested, so the variable numbering of every already-
//! built frame has to stay stable across the extension and the CNF has to
//! grow strictly append-only — otherwise cached activation literals and
//! learnt clauses would silently refer to the wrong time frames.
//!
//! Checked two ways:
//! * structurally — stepwise `extend_to` through several stops yields the
//!   same per-(frame, signal) literals, the same variable count, and the
//!   same clause stream (each intermediate stop a strict prefix) as one
//!   direct build at the final bound;
//! * behaviourally — a `Checker` that solved queries at a shallow bound
//!   and then grew via `ensure_bound` returns the same verdicts as a
//!   fresh checker built at the deep bound.
//!
//! Property-checked over seeded fuzz-generated netlists plus the six
//! in-tree designs.

use fuzz::{build, sample_genome, GenConfig};
use mc::{Checker, InitMode, McConfig, Unrolling};
use netlist::{Netlist, SignalId};
use prng::Rng;
use uarch::{build_core, build_tiny, CoreConfig};

fn in_tree_netlists() -> Vec<(&'static str, Netlist)> {
    vec![
        ("minicva6", build_core(&CoreConfig::default()).netlist),
        ("minicva6-mul", build_core(&CoreConfig::cva6_mul()).netlist),
        ("minicva6-op", build_core(&CoreConfig::cva6_op()).netlist),
        ("hardened", build_core(&CoreConfig::hardened()).netlist),
        ("tinycore", build_tiny().netlist),
        ("minicache", uarch::cache::build_cache().netlist),
    ]
}

/// Builds `nl` stepwise through `stops` and directly at the final stop,
/// then asserts variable-mapping identity and clause-stream prefix
/// stability.
fn assert_extension_stable(name: &str, nl: &Netlist, init: InitMode, stops: &[usize]) {
    let k = *stops.last().expect("at least one stop");
    let mut direct = Unrolling::new(nl, init);
    direct.gate().solver().set_clause_log(true);
    direct.extend_to(k);

    let mut step = Unrolling::new(nl, init);
    step.gate().solver().set_clause_log(true);
    let mut prefix_lens = Vec::new();
    for &s in stops {
        step.extend_to(s);
        prefix_lens.push(step.gate().solver_ref().logged_clauses().len());
    }
    assert_eq!(step.num_frames(), k, "{name}: wrong final frame count");
    assert_eq!(
        step.gate().num_vars(),
        direct.gate().num_vars(),
        "{name}: stepwise and direct builds allocated different variables"
    );
    for t in 0..k {
        for i in 0..nl.len() {
            let sig = SignalId(i as u32);
            assert_eq!(
                step.lits(t, sig),
                direct.lits(t, sig),
                "{name}: literal mapping of node {i} at frame {t} drifted"
            );
        }
    }
    let direct_log = direct.gate().solver_ref().logged_clauses().to_vec();
    let step_log = step.gate().solver_ref().logged_clauses().to_vec();
    assert_eq!(
        step_log, direct_log,
        "{name}: stepwise clause stream differs from the direct build"
    );
    // Each intermediate stop's CNF is a strict prefix of the final CNF:
    // extension only ever appends.
    for (&s, &len) in stops.iter().zip(prefix_lens.iter()) {
        assert_eq!(
            &step_log[..len],
            &direct_log[..len],
            "{name}: CNF at stop {s} is not a prefix of the direct build"
        );
    }
}

#[test]
fn in_tree_designs_extend_stably() {
    for (name, nl) in in_tree_netlists() {
        for init in [InitMode::Reset, InitMode::Free] {
            assert_extension_stable(name, &nl, init, &[2, 5, 8]);
        }
    }
}

#[test]
fn fuzz_generated_netlists_extend_stably() {
    let mut rng = Rng::new(0x5eed11);
    for case in 0..40 {
        let genome = sample_genome(&mut rng, &GenConfig::default());
        let d = build(&genome);
        assert_extension_stable(
            &format!("fuzz case {case}"),
            &d.netlist,
            InitMode::Reset,
            &[1, 3, 7],
        );
    }
}

/// A checker grown via `ensure_bound` (after already answering queries at
/// the shallow bound) must agree with a fresh checker built at the deep
/// bound — the verdict-level face of the same stability property.
#[test]
fn grown_checker_agrees_with_fresh_checker() {
    let mut rng = Rng::new(0x5eed22);
    let (shallow, deep) = (3usize, 7usize);
    let mut covered = 0u32;
    for _ in 0..60 {
        let genome = sample_genome(&mut rng, &GenConfig::default());
        let d = build(&genome);
        let cfg = |bound| McConfig {
            bound,
            bound_is_complete: true,
            ..Default::default()
        };
        let mut fresh = Checker::new(&d.netlist, cfg(deep));
        let want = fresh.check_cover(d.cover, &[]);

        let mut grown = Checker::new(&d.netlist, cfg(shallow));
        let at_shallow = grown.check_cover(d.cover, &[]);
        grown.ensure_bound(deep);
        let got = grown.check_cover(d.cover, &[]);
        assert_eq!(
            got.is_reachable(),
            want.is_reachable(),
            "grown checker flipped reachability vs fresh build at bound {deep}"
        );
        assert_eq!(got.is_unreachable(), want.is_unreachable());
        // Monotonicity sanity: growing the bound never loses a witness.
        if at_shallow.is_reachable() {
            assert!(got.is_reachable(), "witness lost by ensure_bound");
        }
        if want.is_reachable() {
            covered += 1;
        }
    }
    assert!(
        covered >= 5,
        "fuzz distribution degenerated: only {covered}/60 reachable covers"
    );
}
