//! Determinism of the parallel property-evaluation engine: any worker
//! count must produce results byte-identical to `--jobs 1`, because jobs
//! are independent and merge by job id (DESIGN.md §6). These tests compare
//! full scheduling-independent fingerprints — µPATH sets, witnesses,
//! decisions, leakage signatures, and outcome/budget accounting — across
//! worker counts.

use mupath::{synthesize_isa_with, ContextMode, EngineOptions, IsaSynthesis, SynthConfig};
use sat::BudgetPool;
use std::fmt::Write as _;
use std::sync::Arc;
use synthlc::{synthesize_leakage, LeakConfig, LeakageReport, TxKind};
use uarch::{build_core, build_tiny, CoreConfig};

fn isa_fingerprint(r: &IsaSynthesis) -> String {
    let mut out = String::new();
    for i in &r.instrs {
        writeln!(
            out,
            "{} complete={} paths={:?} concrete={:?} decisions={:?} classes={:?} \
             p={} r={} u={} ud={}",
            i.opcode,
            i.complete,
            i.paths,
            i.concrete,
            i.decisions,
            i.class_decisions,
            i.stats.properties,
            i.stats.reachable,
            i.stats.unreachable,
            i.stats.undetermined
        )
        .unwrap();
    }
    out
}

fn leak_fingerprint(r: &LeakageReport) -> String {
    let mut out = String::new();
    for i in &r.mupath {
        writeln!(
            out,
            "{} complete={} paths={:?} decisions={:?}",
            i.opcode, i.complete, i.paths, i.class_decisions
        )
        .unwrap();
    }
    for s in &r.signatures {
        writeln!(out, "sig {}", s.render()).unwrap();
    }
    writeln!(
        out,
        "candidates={:?} transponders={:?} transmitters={:?}",
        r.candidate_transponders, r.transponders, r.transmitters
    )
    .unwrap();
    for (tag, s) in [("mupath", &r.mupath_stats), ("ift", &r.ift_stats)] {
        writeln!(
            out,
            "{tag} p={} r={} u={} ud={}",
            s.properties, s.reachable, s.unreachable, s.undetermined
        )
        .unwrap();
    }
    out
}

#[test]
fn tinycore_mupath_synthesis_is_deterministic_across_worker_counts() {
    let design = build_tiny();
    let cfg = SynthConfig {
        slots: vec![0, 1],
        context: ContextMode::Any,
        bound: 12,
        conflict_budget: Some(1_000_000),
        max_shapes: 16,
    };
    let ops = design.isa.clone();
    let mut runs = Vec::new();
    for threads in [1, 2, 3] {
        let pool = Arc::new(BudgetPool::new(None));
        let opts = EngineOptions {
            threads,
            budget_pool: Some(Arc::clone(&pool)),
        };
        let r = synthesize_isa_with(&design, &ops, &cfg, &opts);
        runs.push((
            threads,
            isa_fingerprint(&r),
            pool.conflicts(),
            pool.propagations(),
        ));
    }
    let (_, baseline, conflicts, propagations) = runs[0].clone();
    for (threads, fp, c, p) in &runs[1..] {
        assert_eq!(
            *fp, baseline,
            "--jobs {threads} produced different µPATHs than --jobs 1"
        );
        assert_eq!(
            (*c, *p),
            (conflicts, propagations),
            "--jobs {threads} budget drift"
        );
    }
}

#[test]
fn divider_leakage_synthesis_is_deterministic_across_worker_counts() {
    let design = build_core(&CoreConfig::default());
    let cfg = LeakConfig {
        mupath: SynthConfig {
            slots: vec![0],
            context: ContextMode::Solo,
            bound: 18,
            conflict_budget: Some(2_000_000),
            max_shapes: 32,
        },
        transmitters: vec![isa::Opcode::Div, isa::Opcode::Lw],
        kinds: vec![TxKind::Intrinsic, TxKind::DynamicOlder],
        bound: 18,
        conflict_budget: Some(2_000_000),
        threads: 1,
        budget_pool: None,
        slot_base: 0,
        max_sources: Some(2),
        coi: true,
        static_prune: true,
    };
    let mut runs = Vec::new();
    for threads in [1, 3] {
        let mut cfg = cfg.clone();
        cfg.threads = threads;
        let pool = Arc::new(BudgetPool::new(None));
        cfg.budget_pool = Some(Arc::clone(&pool));
        let r = synthesize_leakage(&design, &[isa::Opcode::Div], &cfg);
        runs.push((threads, leak_fingerprint(&r), pool.conflicts()));
    }
    assert!(
        runs[0].1.contains("sig "),
        "expected the divider to synthesize at least one leakage signature"
    );
    let (_, baseline, conflicts) = runs[0].clone();
    for (threads, fp, c) in &runs[1..] {
        assert_eq!(
            *fp, baseline,
            "--jobs {threads} produced different signatures than --jobs 1"
        );
        assert_eq!(*c, conflicts, "--jobs {threads} budget drift");
    }
}

/// The Fig. 8 quick-scope sweep (the `fig8` binary's configuration),
/// parallel vs sequential. Several minutes of solving; excluded from the
/// tier-1 suite — run with `cargo test -- --ignored`, or rely on the
/// `perf` binary's `leakage_core` stage, which asserts the same equality
/// on every run.
#[test]
#[ignore = "several minutes of SAT solving; the perf binary checks this on every run"]
fn fig8_quick_scope_leakage_is_deterministic_across_worker_counts() {
    let design = build_core(&CoreConfig::default());
    let transponders = [isa::Opcode::Div, isa::Opcode::Lw, isa::Opcode::Sw];
    let cfg = LeakConfig {
        mupath: SynthConfig {
            slots: vec![0, 1],
            context: ContextMode::NoControlFlow,
            bound: 24,
            conflict_budget: Some(2_000_000),
            max_shapes: 64,
        },
        transmitters: vec![isa::Opcode::Div, isa::Opcode::Lw, isa::Opcode::Sw],
        kinds: vec![
            TxKind::Intrinsic,
            TxKind::DynamicOlder,
            TxKind::DynamicYounger,
        ],
        bound: 22,
        conflict_budget: Some(1_000_000),
        threads: 1,
        budget_pool: None,
        slot_base: 0,
        max_sources: Some(3),
        coi: true,
        static_prune: true,
    };
    let mut runs = Vec::new();
    for threads in [1, 4] {
        let mut cfg = cfg.clone();
        cfg.threads = threads;
        let r = synthesize_leakage(&design, &transponders, &cfg);
        runs.push((threads, leak_fingerprint(&r)));
    }
    assert_eq!(
        runs[0].1, runs[1].1,
        "--jobs 4 produced a different fig8 quick-scope sweep than --jobs 1"
    );
}
