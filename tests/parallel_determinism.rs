//! Determinism of the parallel property-evaluation engine: any worker
//! count must produce results byte-identical to `--jobs 1`, because jobs
//! are independent and merge by job id (DESIGN.md §6). These tests compare
//! full scheduling-independent fingerprints — µPATH sets, witnesses,
//! decisions, leakage signatures, and outcome/budget accounting — across
//! worker counts.

use mc::{FaultPlan, JobStore};
use mupath::{synthesize_isa_with, ContextMode, EngineOptions, IsaSynthesis, SynthConfig};
use sat::BudgetPool;
use std::fmt::Write as _;
use std::sync::Arc;
use synthlc::{synthesize_leakage, Journal, LeakConfig, LeakageReport, TxKind};
use uarch::{build_core, build_tiny, CoreConfig};

fn isa_fingerprint(r: &IsaSynthesis) -> String {
    let mut out = String::new();
    for i in &r.instrs {
        writeln!(
            out,
            "{} complete={} paths={:?} concrete={:?} decisions={:?} classes={:?} \
             p={} r={} u={} ud={}",
            i.opcode,
            i.complete,
            i.paths,
            i.concrete,
            i.decisions,
            i.class_decisions,
            i.stats.properties,
            i.stats.reachable,
            i.stats.unreachable,
            i.stats.undetermined
        )
        .unwrap();
    }
    out
}

fn leak_fingerprint(r: &LeakageReport) -> String {
    let mut out = String::new();
    for i in &r.mupath {
        writeln!(
            out,
            "{} complete={} paths={:?} decisions={:?}",
            i.opcode, i.complete, i.paths, i.class_decisions
        )
        .unwrap();
    }
    for s in &r.signatures {
        writeln!(out, "sig {}", s.render()).unwrap();
    }
    writeln!(
        out,
        "candidates={:?} transponders={:?} transmitters={:?}",
        r.candidate_transponders, r.transponders, r.transmitters
    )
    .unwrap();
    for (tag, s) in [("mupath", &r.mupath_stats), ("ift", &r.ift_stats)] {
        writeln!(
            out,
            "{tag} p={} r={} u={} ud={}",
            s.properties, s.reachable, s.unreachable, s.undetermined
        )
        .unwrap();
    }
    out
}

#[test]
fn tinycore_mupath_synthesis_is_deterministic_across_worker_counts() {
    let design = build_tiny();
    let cfg = SynthConfig {
        slots: vec![0, 1],
        context: ContextMode::Any,
        bound: 12,
        conflict_budget: Some(1_000_000),
        max_shapes: 16,
    };
    let ops = design.isa.clone();
    let mut runs = Vec::new();
    for threads in [1, 2, 3] {
        let pool = Arc::new(BudgetPool::new(None));
        let opts = EngineOptions {
            threads,
            budget_pool: Some(Arc::clone(&pool)),
            robust: Default::default(),
        };
        let r = synthesize_isa_with(&design, &ops, &cfg, &opts);
        runs.push((
            threads,
            isa_fingerprint(&r),
            pool.conflicts(),
            pool.propagations(),
        ));
    }
    let (_, baseline, conflicts, propagations) = runs[0].clone();
    for (threads, fp, c, p) in &runs[1..] {
        assert_eq!(
            *fp, baseline,
            "--jobs {threads} produced different µPATHs than --jobs 1"
        );
        assert_eq!(
            (*c, *p),
            (conflicts, propagations),
            "--jobs {threads} budget drift"
        );
    }
}

#[test]
fn divider_leakage_synthesis_is_deterministic_across_worker_counts() {
    let design = build_core(&CoreConfig::default());
    let cfg = LeakConfig {
        mupath: SynthConfig {
            slots: vec![0],
            context: ContextMode::Solo,
            bound: 18,
            conflict_budget: Some(2_000_000),
            max_shapes: 32,
        },
        transmitters: vec![isa::Opcode::Div, isa::Opcode::Lw],
        kinds: vec![TxKind::Intrinsic, TxKind::DynamicOlder],
        bound: 18,
        conflict_budget: Some(2_000_000),
        threads: 1,
        budget_pool: None,
        slot_base: 0,
        max_sources: Some(2),
        coi: true,
        static_prune: true,
        robust: Default::default(),
    };
    let mut runs = Vec::new();
    for threads in [1, 3] {
        let mut cfg = cfg.clone();
        cfg.threads = threads;
        let pool = Arc::new(BudgetPool::new(None));
        cfg.budget_pool = Some(Arc::clone(&pool));
        let r = synthesize_leakage(&design, &[isa::Opcode::Div], &cfg);
        runs.push((threads, leak_fingerprint(&r), pool.conflicts()));
    }
    assert!(
        runs[0].1.contains("sig "),
        "expected the divider to synthesize at least one leakage signature"
    );
    let (_, baseline, conflicts) = runs[0].clone();
    for (threads, fp, c) in &runs[1..] {
        assert_eq!(
            *fp, baseline,
            "--jobs {threads} produced different signatures than --jobs 1"
        );
        assert_eq!(*c, conflicts, "--jobs {threads} budget drift");
    }
}

/// The minicache LW leak query (the §VII-A2 cache experiment's
/// configuration) — the workload of the robustness tests below.
fn minicache_lw_cfg() -> LeakConfig {
    LeakConfig {
        mupath: SynthConfig {
            slots: vec![2],
            context: ContextMode::Any,
            bound: 24,
            conflict_budget: Some(2_000_000),
            max_shapes: 48,
        },
        transmitters: vec![isa::Opcode::Lw],
        kinds: vec![TxKind::Static],
        bound: 24,
        conflict_budget: Some(2_000_000),
        threads: 2,
        budget_pool: None,
        slot_base: 1,
        max_sources: Some(1),
        coi: true,
        static_prune: true,
        robust: Default::default(),
    }
}

/// Fault-injected runs (DESIGN.md §8) must complete without aborting, book
/// every degradation under its reason, and only ever *widen* verdicts to
/// Undetermined: a faulted run may lose signatures or inputs relative to
/// the clean run, but can never invent ones the clean run does not have.
#[test]
fn fault_injected_runs_widen_but_never_flip_verdicts() {
    let design = uarch::cache::build_cache();
    let base = minicache_lw_cfg();
    let clean = synthesize_leakage(&design, &[isa::Opcode::Lw], &base);
    assert_eq!(clean.degraded_jobs, 0);
    assert!(
        !clean.signatures.is_empty(),
        "the clean minicache run must find the LW^S leak"
    );
    let mut any_degraded = false;
    for seed in [1u64, 7, 42] {
        let mut cfg = base.clone();
        cfg.robust.faults = FaultPlan::new(seed, 0.6);
        let r = synthesize_leakage(&design, &[isa::Opcode::Lw], &cfg);
        for s in &r.signatures {
            let c = clean
                .signatures
                .iter()
                .find(|c| c.transponder == s.transponder && c.src == s.src)
                .unwrap_or_else(|| panic!("seed {seed}: fault invented signature {}", s.render()));
            assert!(
                s.inputs.is_subset(&c.inputs),
                "seed {seed}: fault invented inputs in {}",
                s.render()
            );
        }
        let degraded_stats = r.mupath_stats.degraded() + r.ift_stats.degraded();
        assert_eq!(
            degraded_stats > 0,
            r.degraded_jobs > 0,
            "seed {seed}: degraded jobs and degraded stats must agree"
        );
        if r.degraded_jobs == 0 {
            assert_eq!(
                leak_fingerprint(&r),
                leak_fingerprint(&clean),
                "seed {seed}: no fault fired, so the run must be identical"
            );
        } else {
            any_degraded = true;
            assert!(
                degraded_stats >= r.degraded_jobs,
                "seed {seed}: every degraded job must book >= 1 reason"
            );
        }
    }
    assert!(
        any_degraded,
        "rate 0.6 across three seeds must inject at least one fault"
    );
}

/// Journal + resume (DESIGN.md §8): a fault-interrupted journaled run,
/// even with a torn final record (a kill mid-append), resumes to a report
/// byte-identical to an uninterrupted run.
#[test]
fn journaled_run_resumes_byte_identical_after_faults_and_torn_tail() {
    let design = uarch::cache::build_cache();
    let base = minicache_lw_cfg();
    let baseline = leak_fingerprint(&synthesize_leakage(&design, &[isa::Opcode::Lw], &base));
    // A seed whose plan spares the µPATH job but kills the IFT unit, so
    // the journal ends up holding the former and not the latter.
    let rate = 0.8;
    let seed = (0..1024u64)
        .find(|&s| {
            let p = FaultPlan::new(s, rate);
            p.fault_for("mupath", 0).is_none() && p.fault_for("ift", 0).is_some()
        })
        .expect("some seed in 0..1024 splits the phases");
    let path =
        std::env::temp_dir().join(format!("synthlc-resume-test-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let mut cfg = base.clone();
        cfg.robust.faults = FaultPlan::new(seed, rate);
        cfg.robust.journal = Some(Arc::new(Journal::create(&path).unwrap()) as Arc<dyn JobStore>);
        let r = synthesize_leakage(&design, &[isa::Opcode::Lw], &cfg);
        assert!(
            r.degraded_jobs >= 1,
            "seed {seed} must degrade the IFT unit"
        );
    }
    // Simulate a kill mid-append: a torn, newline-less record at the tail.
    let mut bytes = std::fs::read(&path).unwrap();
    let good_records = bytes.iter().filter(|&&b| b == b'\n').count();
    assert!(
        good_records >= 1,
        "the clean µPATH verdict must have been journaled"
    );
    bytes.extend_from_slice(b"{\"k\":\"torn-write");
    std::fs::write(&path, &bytes).unwrap();

    let journal = Arc::new(Journal::resume(&path).unwrap());
    assert_eq!(
        journal.len(),
        good_records,
        "torn tail dropped, good records kept"
    );
    let mut cfg = base.clone();
    cfg.robust.journal = Some(Arc::clone(&journal) as Arc<dyn JobStore>);
    let r = synthesize_leakage(&design, &[isa::Opcode::Lw], &cfg);
    assert_eq!(r.degraded_jobs, 0, "resume reruns the faulted job cleanly");
    assert!(
        r.resumed_jobs >= 1,
        "the journaled µPATH verdict must replay without solving"
    );
    assert_eq!(
        leak_fingerprint(&r),
        baseline,
        "resumed run must be byte-identical to an uninterrupted one"
    );
    std::fs::remove_file(&path).unwrap();
}

/// The Fig. 8 quick-scope sweep (the `fig8` binary's configuration),
/// parallel vs sequential. Several minutes of solving; excluded from the
/// tier-1 suite — run with `cargo test -- --ignored`, or rely on the
/// `perf` binary's `leakage_core` stage, which asserts the same equality
/// on every run.
#[test]
#[ignore = "several minutes of SAT solving; the perf binary checks this on every run"]
fn fig8_quick_scope_leakage_is_deterministic_across_worker_counts() {
    let design = build_core(&CoreConfig::default());
    let transponders = [isa::Opcode::Div, isa::Opcode::Lw, isa::Opcode::Sw];
    let cfg = LeakConfig {
        mupath: SynthConfig {
            slots: vec![0, 1],
            context: ContextMode::NoControlFlow,
            bound: 24,
            conflict_budget: Some(2_000_000),
            max_shapes: 64,
        },
        transmitters: vec![isa::Opcode::Div, isa::Opcode::Lw, isa::Opcode::Sw],
        kinds: vec![
            TxKind::Intrinsic,
            TxKind::DynamicOlder,
            TxKind::DynamicYounger,
        ],
        bound: 22,
        conflict_budget: Some(1_000_000),
        threads: 1,
        budget_pool: None,
        slot_base: 0,
        max_sources: Some(3),
        coi: true,
        static_prune: true,
        robust: Default::default(),
    };
    let mut runs = Vec::new();
    for threads in [1, 4] {
        let mut cfg = cfg.clone();
        cfg.threads = threads;
        let r = synthesize_leakage(&design, &transponders, &cfg);
        runs.push((threads, leak_fingerprint(&r)));
    }
    assert_eq!(
        runs[0].1, runs[1].1,
        "--jobs 4 produced a different fig8 quick-scope sweep than --jobs 1"
    );
}
